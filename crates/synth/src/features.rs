//! Feature extraction — the offline extractor stack of Fig. 5 (GMV Series
//! Extractor, Temporal/Static Feature Extractor) turning a [`World`] into
//! model-ready instances.
//!
//! GMV enters the models as standardised `log1p` values (`Scaler`), which is
//! also how predictions are mapped back to currency for MAE/RMSE/MAPE.

use crate::config::WorldConfig;
use crate::world::{month_of_year, Role, World};
use gaia_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// `log1p` + z-score scaler fitted on training shops only.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Scaler {
    /// Mean of `ln(1+gmv)` over observed training cells.
    pub mean: f32,
    /// Std of the same population (floored at 1e-3).
    pub std: f32,
}

impl Scaler {
    /// Fit from raw currency values.
    pub fn fit(raw: impl Iterator<Item = f64>) -> Self {
        let logs: Vec<f64> = raw.map(|x| (1.0 + x.max(0.0)).ln()).collect();
        assert!(!logs.is_empty(), "Scaler::fit on empty data");
        let mean = logs.iter().sum::<f64>() / logs.len() as f64;
        let var = logs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / logs.len() as f64;
        Self { mean: mean as f32, std: (var.sqrt() as f32).max(1e-3) }
    }

    /// Currency → normalised log space.
    pub fn normalize(&self, raw: f64) -> f32 {
        (((1.0 + raw.max(0.0)).ln() as f32) - self.mean) / self.std
    }

    /// Normalised log space → currency.
    pub fn denormalize(&self, z: f32) -> f64 {
        ((z * self.std + self.mean) as f64).exp() - 1.0
    }

    /// Currency → *positive* model space: the z-scored log value shifted by
    /// [`TARGET_SHIFT`]. Model outputs live here because the paper's
    /// prediction head (Eq. 9) ends in a ReLU, so the target space must be
    /// non-negative; the shift keeps targets ~N(TARGET_SHIFT, 1) > 0 while
    /// preserving unit-scale gradients for the MSE loss.
    pub fn normalize_pos(&self, raw: f64) -> f32 {
        self.normalize(raw) + TARGET_SHIFT
    }

    /// Positive model space → currency (floored at zero — a model-space
    /// value far below the shift corresponds to less than one currency unit).
    pub fn denormalize_pos(&self, z: f32) -> f64 {
        self.denormalize(z.max(0.0) - TARGET_SHIFT).max(0.0)
    }
}

/// Train/validation/test split over shop ids.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Splits {
    /// Training shop ids.
    pub train: Vec<usize>,
    /// Validation shop ids.
    pub val: Vec<usize>,
    /// Test shop ids (the Table I population).
    pub test: Vec<usize>,
}

/// Model-ready dataset: per-shop input window features and horizon targets,
/// plus the graph-independent bookkeeping every model shares.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Number of shops.
    pub n: usize,
    /// Input window length `T`.
    pub t: usize,
    /// Forecast horizon `T'`.
    pub horizon: usize,
    /// Normalised GMV input series, `[N][T]`.
    pub gmv_norm: Vec<Vec<f32>>,
    /// Auxiliary temporal features per shop, each `[T, d_t]`.
    pub temporal: Vec<Tensor>,
    /// Static features per shop, each `[1, d_s]`.
    pub statics: Vec<Tensor>,
    /// Raw currency targets `[N][T']` (future months).
    pub targets_raw: Vec<Vec<f64>>,
    /// Model-space targets `[N][T']` for the MSE loss (positive log space,
    /// see [`Scaler::normalize_pos`]).
    pub targets_norm: Vec<Vec<f32>>,
    /// Observed months inside the input window per shop (`T` minus leading
    /// zeros) — the Fig 3 grouping key.
    pub observed_len: Vec<usize>,
    /// The fitted scaler.
    pub scaler: Scaler,
    /// Auxiliary scaler for monthly order counts (train-fitted, frozen
    /// across incremental refreshes like [`Dataset::scaler`]).
    pub orders_scaler: Scaler,
    /// Auxiliary scaler for monthly unique customers (same freezing rule).
    pub customers_scaler: Scaler,
    /// Largest model-space target seen on the training split, used to clamp
    /// predictions before the exp() back-transform (early-training overshoot
    /// would otherwise explode RMSE through the exponential).
    pub max_model_z: f32,
    /// Temporal feature width.
    pub d_t: usize,
    /// Static feature width.
    pub d_s: usize,
    /// Shop id splits.
    pub splits: Splits,
}

/// Width of the auxiliary temporal feature vector:
/// `[sin(month), cos(month), log-orders, log-customers, observed]`.
pub const D_TEMPORAL: usize = 5;

/// Offset added to z-scored log targets so the model-space targets are
/// positive (the paper's prediction head, Eq. 9, ends in a ReLU). Targets
/// are ~N(TARGET_SHIFT, 1); prediction heads initialise their output bias
/// here so every model starts as the mean predictor.
pub const TARGET_SHIFT: f32 = 4.0;

/// Build the dataset from a generated world.
pub fn build_dataset(world: &World) -> Dataset {
    let cfg = &world.config;
    let n = world.shops.len();
    let t = cfg.input_window;
    let horizon = cfg.horizon;
    let in_start = cfg.input_start();
    let fut_start = cfg.horizon_start();

    // Deterministic 70/10/20 split.
    let mut ids: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_5711);
    ids.shuffle(&mut rng);
    let n_train = (n as f64 * 0.7) as usize;
    let n_val = (n as f64 * 0.1) as usize;
    let splits = Splits {
        train: ids[..n_train].to_vec(),
        val: ids[n_train..n_train + n_val].to_vec(),
        test: ids[n_train + n_val..].to_vec(),
    };

    // Scaler fitted on observed training cells of the input window only.
    let scaler = Scaler::fit(splits.train.iter().flat_map(|&v| {
        let shop = &world.shops[v];
        (in_start..fut_start).filter(move |&m| m >= shop.opened).map(move |m| shop.gmv[m])
    }));

    // Secondary scalers for auxiliary magnitudes, also train-only.
    let orders_scaler = Scaler::fit(splits.train.iter().flat_map(|&v| {
        let shop = &world.shops[v];
        (in_start..fut_start).filter(move |&m| m >= shop.opened).map(move |m| shop.orders[m])
    }));
    let customers_scaler = Scaler::fit(splits.train.iter().flat_map(|&v| {
        let shop = &world.shops[v];
        (in_start..fut_start).filter(move |&m| m >= shop.opened).map(move |m| shop.customers[m])
    }));

    let d_s = cfg.n_industries + cfg.n_regions + 2;
    let mut gmv_norm = Vec::with_capacity(n);
    let mut temporal = Vec::with_capacity(n);
    let mut statics = Vec::with_capacity(n);
    let mut targets_raw = Vec::with_capacity(n);
    let mut targets_norm = Vec::with_capacity(n);
    let mut observed_len = Vec::with_capacity(n);

    for v in 0..n {
        let row = node_row(world, v, &scaler, &orders_scaler, &customers_scaler);
        gmv_norm.push(row.series);
        temporal.push(row.feats);
        statics.push(row.stat);
        targets_raw.push(row.raw);
        targets_norm.push(row.norm);
        observed_len.push(row.obs);
    }

    let max_model_z = splits
        .train
        .iter()
        .flat_map(|&v| targets_norm[v].iter().copied())
        .fold(TARGET_SHIFT, f32::max)
        + 1.0;

    Dataset {
        n,
        t,
        horizon,
        gmv_norm,
        temporal,
        statics,
        targets_raw,
        targets_norm,
        observed_len,
        scaler,
        orders_scaler,
        customers_scaler,
        max_model_z,
        d_t: D_TEMPORAL,
        d_s,
        splits,
    }
}

/// One shop's model-ready row: everything [`build_dataset`] derives per node.
struct NodeRow {
    series: Vec<f32>,
    feats: Tensor,
    stat: Tensor,
    raw: Vec<f64>,
    norm: Vec<f32>,
    obs: usize,
}

/// Compute one shop's dataset row from the world under the given (already
/// fitted) scalers. Shared between the full build and the incremental
/// refresh paths, so a refreshed row is bit-identical to a rebuilt one by
/// construction.
fn node_row(
    world: &World,
    v: usize,
    scaler: &Scaler,
    orders_scaler: &Scaler,
    customers_scaler: &Scaler,
) -> NodeRow {
    let cfg = &world.config;
    let t = cfg.input_window;
    let in_start = cfg.input_start();
    let fut_start = cfg.horizon_start();
    let d_s = cfg.n_industries + cfg.n_regions + 2;
    let shop = &world.shops[v];
    let mut series = Vec::with_capacity(t);
    let mut feats = Tensor::zeros(vec![t, D_TEMPORAL]);
    for (row, m) in (in_start..fut_start).enumerate() {
        let observed = m >= shop.opened;
        series.push(if observed { scaler.normalize(shop.gmv[m]) } else { 0.0 });
        let moy = month_of_year(m) as f32;
        *feats.at_mut(row, 0) = (std::f32::consts::TAU * moy / 12.0).sin();
        *feats.at_mut(row, 1) = (std::f32::consts::TAU * moy / 12.0).cos();
        *feats.at_mut(row, 2) =
            if observed { orders_scaler.normalize(shop.orders[m]) } else { 0.0 };
        *feats.at_mut(row, 3) =
            if observed { customers_scaler.normalize(shop.customers[m]) } else { 0.0 };
        *feats.at_mut(row, 4) = if observed { 1.0 } else { 0.0 };
    }
    let mut stat = Tensor::zeros(vec![1, d_s]);
    *stat.at_mut(0, shop.industry as usize) = 1.0;
    *stat.at_mut(0, cfg.n_industries + shop.region as usize) = 1.0;
    *stat.at_mut(0, cfg.n_industries + cfg.n_regions) =
        if shop.role == Role::Supplier { 1.0 } else { 0.0 };
    // Normalised age (how much of the window is observed).
    let obs = (fut_start - in_start).saturating_sub(shop.opened.saturating_sub(in_start));
    let obs = obs.min(t);
    *stat.at_mut(0, cfg.n_industries + cfg.n_regions + 1) = obs as f32 / t as f32;

    let raw: Vec<f64> = (fut_start..fut_start + cfg.horizon).map(|m| shop.gmv[m]).collect();
    let norm: Vec<f32> = raw.iter().map(|&x| scaler.normalize_pos(x)).collect();
    NodeRow { series, feats, stat, raw, norm, obs }
}

/// Refresh a dataset after world mutations, recomputing **only** the rows in
/// `dirty` (plus any nodes appended since `prev` was built) under the frozen
/// training-time statistics of `prev`.
///
/// Freezing is the point: scalers, splits and the `max_model_z` clamp were
/// fitted when the served model was trained, and a republish that does not
/// retrain must keep feeding the model inputs in the same normalisation —
/// otherwise every clean node's features (and thus its cached embedding)
/// would silently shift. New nodes (`prev.n..world.shops.len()`) are always
/// recomputed and join the test split: they were never seen in training.
///
/// Because rows are pure per-node functions of `(world, frozen scalers)`,
/// the result is bit-identical to [`refresh_dataset_full`] whenever `dirty`
/// covers every node whose shop data changed — the feature-space half of the
/// delta-vs-full parity wall.
pub fn refresh_dataset(world: &World, prev: &Dataset, dirty: &[u32]) -> Dataset {
    let n = world.shops.len();
    assert!(n >= prev.n, "refresh_dataset: worlds only grow (n={n} < prev {})", prev.n);
    let mut ds = prev.clone();
    ds.n = n;
    for v in prev.n..n {
        ds.splits.test.push(v);
    }
    let recompute = dirty.iter().map(|&v| v as usize).filter(|&v| v < prev.n).chain(prev.n..n);
    for v in recompute {
        let row = node_row(world, v, &ds.scaler, &ds.orders_scaler, &ds.customers_scaler);
        if v < prev.n {
            ds.gmv_norm[v] = row.series;
            ds.temporal[v] = row.feats;
            ds.statics[v] = row.stat;
            ds.targets_raw[v] = row.raw;
            ds.targets_norm[v] = row.norm;
            ds.observed_len[v] = row.obs;
        } else {
            ds.gmv_norm.push(row.series);
            ds.temporal.push(row.feats);
            ds.statics.push(row.stat);
            ds.targets_raw.push(row.raw);
            ds.targets_norm.push(row.norm);
            ds.observed_len.push(row.obs);
        }
    }
    ds
}

/// Full-teardown counterpart of [`refresh_dataset`]: recompute **every**
/// row from the world under `prev`'s frozen statistics. This is the
/// reference the delta parity wall compares against — same frozen scalers,
/// no dirty-set shortcuts.
pub fn refresh_dataset_full(world: &World, prev: &Dataset) -> Dataset {
    let all: Vec<u32> = (0..prev.n as u32).collect();
    refresh_dataset(world, prev, &all)
}

/// True when **every** per-node column of shop `v`'s row — input series,
/// temporal and static features, targets, observed length — is bit-identical
/// between two datasets. This is the incremental-republish skip test: a node
/// whose row did not move cannot produce a different embedding (embeddings
/// are pure functions of the row and the kernels are deterministic), so its
/// cached entries can be carried into the next generation untouched.
/// Comparison is bitwise (`f32`/`f64` equality), so `NaN`s compare unequal
/// and force a recompute — the conservative direction.
pub fn node_row_unchanged(a: &Dataset, b: &Dataset, v: usize) -> bool {
    a.gmv_norm[v] == b.gmv_norm[v]
        && a.observed_len[v] == b.observed_len[v]
        && a.temporal[v].shape() == b.temporal[v].shape()
        && a.temporal[v].data() == b.temporal[v].data()
        && a.statics[v].shape() == b.statics[v].shape()
        && a.statics[v].data() == b.statics[v].data()
        && a.targets_raw[v] == b.targets_raw[v]
        && a.targets_norm[v] == b.targets_norm[v]
}

impl Dataset {
    /// Normalised-target tensor `[1, T']` for the loss.
    pub fn target_tensor(&self, v: usize) -> Tensor {
        Tensor::from_vec(vec![1, self.horizon], self.targets_norm[v].clone())
    }

    /// Map a model-space `[1, T']` prediction back to currency per month.
    /// Values are clamped to `[0, max_model_z]` before the exponential
    /// back-transform so an untrained or overshooting model cannot produce
    /// astronomically large currency values.
    pub fn denormalize_prediction(&self, pred: &Tensor) -> Vec<f64> {
        pred.data()
            .iter()
            .map(|&z| self.scaler.denormalize_pos(z.min(self.max_model_z)).max(0.0))
            .collect()
    }

    /// Shop ids in the test split whose observed window length is below
    /// `threshold` ("New Shop Group" of Fig 3) and the rest ("Old Shop
    /// Group").
    pub fn new_old_groups(&self, threshold: usize) -> (Vec<usize>, Vec<usize>) {
        let mut new_group = Vec::new();
        let mut old_group = Vec::new();
        for &v in &self.splits.test {
            if self.observed_len[v] < threshold {
                new_group.push(v);
            } else {
                old_group.push(v);
            }
        }
        (new_group, old_group)
    }
}

/// Convenience: generate a world and its dataset in one call.
pub fn generate_dataset(cfg: WorldConfig) -> (World, Dataset) {
    let world = World::generate(cfg);
    let ds = build_dataset(&world);
    (world, ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> (World, Dataset) {
        generate_dataset(WorldConfig::tiny())
    }

    #[test]
    fn scaler_roundtrip() {
        let s = Scaler::fit([10.0, 100.0, 1000.0, 250000.0].into_iter());
        for raw in [5.0, 500.0, 50_000.0] {
            let z = s.normalize(raw);
            let back = s.denormalize(z);
            assert!((back - raw).abs() / raw < 1e-3, "{raw} -> {z} -> {back}");
        }
    }

    #[test]
    fn pos_scaler_roundtrip_and_nonnegative() {
        let s = Scaler::fit([10.0, 100.0, 1000.0, 250000.0].into_iter());
        for raw in [5.0, 500.0, 50_000.0] {
            let z = s.normalize_pos(raw);
            assert!(z >= 0.0);
            let back = s.denormalize_pos(z);
            assert!((back - raw).abs() / raw < 1e-3, "{raw} -> {z} -> {back}");
        }
        // Negative model outputs clamp to zero currency.
        assert_eq!(s.denormalize_pos(-1.0), 0.0);
    }

    #[test]
    fn shapes_consistent() {
        let (world, ds) = dataset();
        assert_eq!(ds.n, world.shops.len());
        for v in 0..ds.n {
            assert_eq!(ds.gmv_norm[v].len(), ds.t);
            assert_eq!(ds.temporal[v].shape(), &[ds.t, ds.d_t]);
            assert_eq!(ds.statics[v].shape(), &[1, ds.d_s]);
            assert_eq!(ds.targets_raw[v].len(), ds.horizon);
        }
    }

    #[test]
    fn splits_partition_everything() {
        let (_, ds) = dataset();
        let mut seen = vec![false; ds.n];
        for &v in ds.splits.train.iter().chain(&ds.splits.val).chain(&ds.splits.test) {
            assert!(!seen[v], "shop {v} in two splits");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "some shop missing from splits");
    }

    #[test]
    fn unobserved_months_are_zeroed_and_masked() {
        let (world, ds) = dataset();
        let in_start = world.config.input_start();
        for v in 0..ds.n {
            let shop = &world.shops[v];
            for row in 0..ds.t {
                let m = in_start + row;
                if m < shop.opened {
                    assert_eq!(ds.gmv_norm[v][row], 0.0);
                    assert_eq!(ds.temporal[v].at(row, 4), 0.0);
                } else {
                    assert_eq!(ds.temporal[v].at(row, 4), 1.0);
                }
            }
        }
    }

    #[test]
    fn static_one_hots_sum_to_two_plus_extras() {
        let (world, ds) = dataset();
        for v in 0..ds.n {
            let s = &ds.statics[v];
            let ind_sum: f32 = (0..world.config.n_industries).map(|i| s.at(0, i)).sum();
            let reg_sum: f32 =
                (0..world.config.n_regions).map(|i| s.at(0, world.config.n_industries + i)).sum();
            assert_eq!(ind_sum, 1.0);
            assert_eq!(reg_sum, 1.0);
        }
    }

    #[test]
    fn targets_are_future_months() {
        let (world, ds) = dataset();
        let fut = world.config.horizon_start();
        for v in 0..ds.n.min(10) {
            for h in 0..ds.horizon {
                assert_eq!(ds.targets_raw[v][h], world.shops[v].gmv[fut + h]);
            }
        }
    }

    #[test]
    fn new_old_grouping_respects_threshold() {
        let (_, ds) = dataset();
        let (new_g, old_g) = ds.new_old_groups(10);
        for &v in &new_g {
            assert!(ds.observed_len[v] < 10);
        }
        for &v in &old_g {
            assert!(ds.observed_len[v] >= 10);
        }
        assert_eq!(new_g.len() + old_g.len(), ds.splits.test.len());
    }

    fn datasets_bit_identical(a: &Dataset, b: &Dataset) {
        assert_eq!(a.n, b.n);
        for v in 0..a.n {
            assert_eq!(a.gmv_norm[v], b.gmv_norm[v], "gmv_norm row {v}");
            assert!(a.temporal[v] == b.temporal[v], "temporal row {v}");
            assert!(a.statics[v] == b.statics[v], "statics row {v}");
            assert_eq!(a.targets_norm[v], b.targets_norm[v], "targets row {v}");
            assert_eq!(a.observed_len[v], b.observed_len[v], "observed_len row {v}");
        }
        assert_eq!(a.max_model_z, b.max_model_z);
        assert_eq!(a.splits.train, b.splits.train);
        assert_eq!(a.splits.test, b.splits.test);
    }

    #[test]
    fn refresh_of_unmutated_world_is_identity() {
        let (world, ds) = dataset();
        datasets_bit_identical(&refresh_dataset(&world, &ds, &[]), &ds);
        datasets_bit_identical(&refresh_dataset_full(&world, &ds), &ds);
    }

    #[test]
    fn dirty_refresh_matches_full_refresh_after_mutations() {
        use crate::mutate::{MonthlySales, NewShop};
        use crate::world::Role;
        let (mut world, ds) = dataset();
        // A window longer than the horizon reaches back into the input
        // months, so both the inputs and the targets of shop 2 change.
        let window: Vec<MonthlySales> = (0..ds.horizon + 3)
            .map(|i| MonthlySales { gmv: 9e4 + i as f64, orders: 120.0, customers: 80.0 })
            .collect();
        world.record_sales(2, &window);
        world.add_shop(NewShop {
            industry: 0,
            region: 0,
            role: Role::Retailer,
            owner: world.shops[5].owner,
            lead: 0,
        });
        let dirty = world.take_dirty();
        let delta = refresh_dataset(&world, &ds, dirty.nodes());
        let full = refresh_dataset_full(&world, &ds);
        datasets_bit_identical(&delta, &full);
        // The new shop joined the test split with an all-unobserved window.
        let new_id = ds.n;
        assert_eq!(delta.n, ds.n + 1);
        assert!(delta.splits.test.contains(&new_id));
        assert_eq!(delta.observed_len[new_id], 0);
        assert!(delta.gmv_norm[new_id].iter().all(|&z| z == 0.0));
        // Frozen statistics carried over from the pre-mutation build.
        assert_eq!(delta.scaler.mean, ds.scaler.mean);
        assert_eq!(delta.max_model_z, ds.max_model_z);
        // And the dirty row actually changed, inputs and targets both.
        assert_ne!(delta.gmv_norm[2], ds.gmv_norm[2]);
        assert_ne!(delta.targets_norm[2], ds.targets_norm[2]);
    }

    #[test]
    fn refresh_without_the_dirty_row_leaves_it_stale() {
        // Negative control: the parity above is meaningful only because a
        // missing dirty id would produce a different dataset.
        use crate::mutate::MonthlySales;
        let (mut world, ds) = dataset();
        let window: Vec<MonthlySales> = (0..ds.horizon + 3)
            .map(|i| MonthlySales { gmv: 9e4 + i as f64, orders: 120.0, customers: 80.0 })
            .collect();
        world.record_sales(2, &window);
        let stale = refresh_dataset(&world, &ds, &[]);
        assert_eq!(stale.gmv_norm[2], ds.gmv_norm[2]);
        let fresh = refresh_dataset(&world, &ds, &[2]);
        assert_ne!(fresh.gmv_norm[2], ds.gmv_norm[2]);
    }

    /// `node_row_unchanged` detects exactly the rows a refresh moved: the
    /// republish path uses it to skip recomputing embeddings for closure
    /// nodes whose inputs did not actually change.
    #[test]
    fn node_row_unchanged_flags_only_moved_rows() {
        use crate::mutate::MonthlySales;
        let (mut world, ds) = dataset();
        for v in 0..ds.n {
            assert!(node_row_unchanged(&ds, &ds, v), "identity must compare unchanged at {v}");
        }
        let window: Vec<MonthlySales> = (0..ds.horizon + 3)
            .map(|i| MonthlySales { gmv: 7e4 + i as f64, orders: 90.0, customers: 60.0 })
            .collect();
        world.record_sales(3, &window);
        let fresh = refresh_dataset(&world, &ds, &[3]);
        assert!(!node_row_unchanged(&fresh, &ds, 3), "rewritten row must compare changed");
        for v in (0..ds.n).filter(|&v| v != 3) {
            assert!(node_row_unchanged(&fresh, &ds, v), "untouched row {v} compared changed");
        }
        // A dirty mark whose underlying data never moved refreshes to a
        // bit-identical row — the skip test must see through it.
        let remark = refresh_dataset(&world, &fresh, &[5]);
        assert!(node_row_unchanged(&remark, &fresh, 5));
    }

    #[test]
    fn denormalize_prediction_is_positive() {
        let (_, ds) = dataset();
        let pred = Tensor::from_vec(vec![1, 3], vec![3.0, 4.0, 4.5]);
        let out = ds.denormalize_prediction(&pred);
        assert!(out.iter().all(|&x| x >= 0.0));
        assert!(out[2] > out[1] && out[1] > out[0]);
        // Overshoot is clamped, not exploded.
        let wild = Tensor::from_vec(vec![1, 3], vec![50.0, 50.0, 50.0]);
        let capped = ds.denormalize_prediction(&wild);
        assert!(capped[0] <= ds.scaler.denormalize_pos(ds.max_model_z) + 1.0);
    }
}
