//! Feature extraction — the offline extractor stack of Fig. 5 (GMV Series
//! Extractor, Temporal/Static Feature Extractor) turning a [`World`] into
//! model-ready instances.
//!
//! GMV enters the models as standardised `log1p` values (`Scaler`), which is
//! also how predictions are mapped back to currency for MAE/RMSE/MAPE.

use crate::config::WorldConfig;
use crate::world::{month_of_year, Role, World};
use gaia_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// `log1p` + z-score scaler fitted on training shops only.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Scaler {
    /// Mean of `ln(1+gmv)` over observed training cells.
    pub mean: f32,
    /// Std of the same population (floored at 1e-3).
    pub std: f32,
}

impl Scaler {
    /// Fit from raw currency values.
    pub fn fit(raw: impl Iterator<Item = f64>) -> Self {
        let logs: Vec<f64> = raw.map(|x| (1.0 + x.max(0.0)).ln()).collect();
        assert!(!logs.is_empty(), "Scaler::fit on empty data");
        let mean = logs.iter().sum::<f64>() / logs.len() as f64;
        let var = logs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / logs.len() as f64;
        Self { mean: mean as f32, std: (var.sqrt() as f32).max(1e-3) }
    }

    /// Currency → normalised log space.
    pub fn normalize(&self, raw: f64) -> f32 {
        (((1.0 + raw.max(0.0)).ln() as f32) - self.mean) / self.std
    }

    /// Normalised log space → currency.
    pub fn denormalize(&self, z: f32) -> f64 {
        ((z * self.std + self.mean) as f64).exp() - 1.0
    }

    /// Currency → *positive* model space: the z-scored log value shifted by
    /// [`TARGET_SHIFT`]. Model outputs live here because the paper's
    /// prediction head (Eq. 9) ends in a ReLU, so the target space must be
    /// non-negative; the shift keeps targets ~N(TARGET_SHIFT, 1) > 0 while
    /// preserving unit-scale gradients for the MSE loss.
    pub fn normalize_pos(&self, raw: f64) -> f32 {
        self.normalize(raw) + TARGET_SHIFT
    }

    /// Positive model space → currency (floored at zero — a model-space
    /// value far below the shift corresponds to less than one currency unit).
    pub fn denormalize_pos(&self, z: f32) -> f64 {
        self.denormalize(z.max(0.0) - TARGET_SHIFT).max(0.0)
    }
}

/// Train/validation/test split over shop ids.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Splits {
    /// Training shop ids.
    pub train: Vec<usize>,
    /// Validation shop ids.
    pub val: Vec<usize>,
    /// Test shop ids (the Table I population).
    pub test: Vec<usize>,
}

/// Model-ready dataset: per-shop input window features and horizon targets,
/// plus the graph-independent bookkeeping every model shares.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Number of shops.
    pub n: usize,
    /// Input window length `T`.
    pub t: usize,
    /// Forecast horizon `T'`.
    pub horizon: usize,
    /// Normalised GMV input series, `[N][T]`.
    pub gmv_norm: Vec<Vec<f32>>,
    /// Auxiliary temporal features per shop, each `[T, d_t]`.
    pub temporal: Vec<Tensor>,
    /// Static features per shop, each `[1, d_s]`.
    pub statics: Vec<Tensor>,
    /// Raw currency targets `[N][T']` (future months).
    pub targets_raw: Vec<Vec<f64>>,
    /// Model-space targets `[N][T']` for the MSE loss (positive log space,
    /// see [`Scaler::normalize_pos`]).
    pub targets_norm: Vec<Vec<f32>>,
    /// Observed months inside the input window per shop (`T` minus leading
    /// zeros) — the Fig 3 grouping key.
    pub observed_len: Vec<usize>,
    /// The fitted scaler.
    pub scaler: Scaler,
    /// Largest model-space target seen on the training split, used to clamp
    /// predictions before the exp() back-transform (early-training overshoot
    /// would otherwise explode RMSE through the exponential).
    pub max_model_z: f32,
    /// Temporal feature width.
    pub d_t: usize,
    /// Static feature width.
    pub d_s: usize,
    /// Shop id splits.
    pub splits: Splits,
}

/// Width of the auxiliary temporal feature vector:
/// `[sin(month), cos(month), log-orders, log-customers, observed]`.
pub const D_TEMPORAL: usize = 5;

/// Offset added to z-scored log targets so the model-space targets are
/// positive (the paper's prediction head, Eq. 9, ends in a ReLU). Targets
/// are ~N(TARGET_SHIFT, 1); prediction heads initialise their output bias
/// here so every model starts as the mean predictor.
pub const TARGET_SHIFT: f32 = 4.0;

/// Build the dataset from a generated world.
pub fn build_dataset(world: &World) -> Dataset {
    let cfg = &world.config;
    let n = world.shops.len();
    let t = cfg.input_window;
    let horizon = cfg.horizon;
    let in_start = cfg.input_start();
    let fut_start = cfg.horizon_start();

    // Deterministic 70/10/20 split.
    let mut ids: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_5711);
    ids.shuffle(&mut rng);
    let n_train = (n as f64 * 0.7) as usize;
    let n_val = (n as f64 * 0.1) as usize;
    let splits = Splits {
        train: ids[..n_train].to_vec(),
        val: ids[n_train..n_train + n_val].to_vec(),
        test: ids[n_train + n_val..].to_vec(),
    };

    // Scaler fitted on observed training cells of the input window only.
    let scaler = Scaler::fit(splits.train.iter().flat_map(|&v| {
        let shop = &world.shops[v];
        (in_start..fut_start).filter(move |&m| m >= shop.opened).map(move |m| shop.gmv[m])
    }));

    // Secondary scalers for auxiliary magnitudes, also train-only.
    let orders_scaler = Scaler::fit(splits.train.iter().flat_map(|&v| {
        let shop = &world.shops[v];
        (in_start..fut_start).filter(move |&m| m >= shop.opened).map(move |m| shop.orders[m])
    }));
    let customers_scaler = Scaler::fit(splits.train.iter().flat_map(|&v| {
        let shop = &world.shops[v];
        (in_start..fut_start).filter(move |&m| m >= shop.opened).map(move |m| shop.customers[m])
    }));

    let d_s = cfg.n_industries + cfg.n_regions + 2;
    let mut gmv_norm = Vec::with_capacity(n);
    let mut temporal = Vec::with_capacity(n);
    let mut statics = Vec::with_capacity(n);
    let mut targets_raw = Vec::with_capacity(n);
    let mut targets_norm = Vec::with_capacity(n);
    let mut observed_len = Vec::with_capacity(n);

    for v in 0..n {
        let shop = &world.shops[v];
        let mut series = Vec::with_capacity(t);
        let mut feats = Tensor::zeros(vec![t, D_TEMPORAL]);
        for (row, m) in (in_start..fut_start).enumerate() {
            let observed = m >= shop.opened;
            series.push(if observed { scaler.normalize(shop.gmv[m]) } else { 0.0 });
            let moy = month_of_year(m) as f32;
            *feats.at_mut(row, 0) = (std::f32::consts::TAU * moy / 12.0).sin();
            *feats.at_mut(row, 1) = (std::f32::consts::TAU * moy / 12.0).cos();
            *feats.at_mut(row, 2) =
                if observed { orders_scaler.normalize(shop.orders[m]) } else { 0.0 };
            *feats.at_mut(row, 3) =
                if observed { customers_scaler.normalize(shop.customers[m]) } else { 0.0 };
            *feats.at_mut(row, 4) = if observed { 1.0 } else { 0.0 };
        }
        let mut stat = Tensor::zeros(vec![1, d_s]);
        *stat.at_mut(0, shop.industry as usize) = 1.0;
        *stat.at_mut(0, cfg.n_industries + shop.region as usize) = 1.0;
        *stat.at_mut(0, cfg.n_industries + cfg.n_regions) =
            if shop.role == Role::Supplier { 1.0 } else { 0.0 };
        // Normalised age (how much of the window is observed).
        let obs = (fut_start - in_start).saturating_sub(shop.opened.saturating_sub(in_start));
        let obs = obs.min(t);
        *stat.at_mut(0, cfg.n_industries + cfg.n_regions + 1) = obs as f32 / t as f32;

        let raw: Vec<f64> = (fut_start..fut_start + horizon).map(|m| shop.gmv[m]).collect();
        let norm: Vec<f32> = raw.iter().map(|&x| scaler.normalize_pos(x)).collect();

        gmv_norm.push(series);
        temporal.push(feats);
        statics.push(stat);
        targets_raw.push(raw);
        targets_norm.push(norm);
        observed_len.push(obs);
    }

    let max_model_z = splits
        .train
        .iter()
        .flat_map(|&v| targets_norm[v].iter().copied())
        .fold(TARGET_SHIFT, f32::max)
        + 1.0;

    Dataset {
        n,
        t,
        horizon,
        gmv_norm,
        temporal,
        statics,
        targets_raw,
        targets_norm,
        observed_len,
        scaler,
        max_model_z,
        d_t: D_TEMPORAL,
        d_s,
        splits,
    }
}

impl Dataset {
    /// Normalised-target tensor `[1, T']` for the loss.
    pub fn target_tensor(&self, v: usize) -> Tensor {
        Tensor::from_vec(vec![1, self.horizon], self.targets_norm[v].clone())
    }

    /// Map a model-space `[1, T']` prediction back to currency per month.
    /// Values are clamped to `[0, max_model_z]` before the exponential
    /// back-transform so an untrained or overshooting model cannot produce
    /// astronomically large currency values.
    pub fn denormalize_prediction(&self, pred: &Tensor) -> Vec<f64> {
        pred.data()
            .iter()
            .map(|&z| self.scaler.denormalize_pos(z.min(self.max_model_z)).max(0.0))
            .collect()
    }

    /// Shop ids in the test split whose observed window length is below
    /// `threshold` ("New Shop Group" of Fig 3) and the rest ("Old Shop
    /// Group").
    pub fn new_old_groups(&self, threshold: usize) -> (Vec<usize>, Vec<usize>) {
        let mut new_group = Vec::new();
        let mut old_group = Vec::new();
        for &v in &self.splits.test {
            if self.observed_len[v] < threshold {
                new_group.push(v);
            } else {
                old_group.push(v);
            }
        }
        (new_group, old_group)
    }
}

/// Convenience: generate a world and its dataset in one call.
pub fn generate_dataset(cfg: WorldConfig) -> (World, Dataset) {
    let world = World::generate(cfg);
    let ds = build_dataset(&world);
    (world, ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> (World, Dataset) {
        generate_dataset(WorldConfig::tiny())
    }

    #[test]
    fn scaler_roundtrip() {
        let s = Scaler::fit([10.0, 100.0, 1000.0, 250000.0].into_iter());
        for raw in [5.0, 500.0, 50_000.0] {
            let z = s.normalize(raw);
            let back = s.denormalize(z);
            assert!((back - raw).abs() / raw < 1e-3, "{raw} -> {z} -> {back}");
        }
    }

    #[test]
    fn pos_scaler_roundtrip_and_nonnegative() {
        let s = Scaler::fit([10.0, 100.0, 1000.0, 250000.0].into_iter());
        for raw in [5.0, 500.0, 50_000.0] {
            let z = s.normalize_pos(raw);
            assert!(z >= 0.0);
            let back = s.denormalize_pos(z);
            assert!((back - raw).abs() / raw < 1e-3, "{raw} -> {z} -> {back}");
        }
        // Negative model outputs clamp to zero currency.
        assert_eq!(s.denormalize_pos(-1.0), 0.0);
    }

    #[test]
    fn shapes_consistent() {
        let (world, ds) = dataset();
        assert_eq!(ds.n, world.shops.len());
        for v in 0..ds.n {
            assert_eq!(ds.gmv_norm[v].len(), ds.t);
            assert_eq!(ds.temporal[v].shape(), &[ds.t, ds.d_t]);
            assert_eq!(ds.statics[v].shape(), &[1, ds.d_s]);
            assert_eq!(ds.targets_raw[v].len(), ds.horizon);
        }
    }

    #[test]
    fn splits_partition_everything() {
        let (_, ds) = dataset();
        let mut seen = vec![false; ds.n];
        for &v in ds.splits.train.iter().chain(&ds.splits.val).chain(&ds.splits.test) {
            assert!(!seen[v], "shop {v} in two splits");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "some shop missing from splits");
    }

    #[test]
    fn unobserved_months_are_zeroed_and_masked() {
        let (world, ds) = dataset();
        let in_start = world.config.input_start();
        for v in 0..ds.n {
            let shop = &world.shops[v];
            for row in 0..ds.t {
                let m = in_start + row;
                if m < shop.opened {
                    assert_eq!(ds.gmv_norm[v][row], 0.0);
                    assert_eq!(ds.temporal[v].at(row, 4), 0.0);
                } else {
                    assert_eq!(ds.temporal[v].at(row, 4), 1.0);
                }
            }
        }
    }

    #[test]
    fn static_one_hots_sum_to_two_plus_extras() {
        let (world, ds) = dataset();
        for v in 0..ds.n {
            let s = &ds.statics[v];
            let ind_sum: f32 = (0..world.config.n_industries).map(|i| s.at(0, i)).sum();
            let reg_sum: f32 =
                (0..world.config.n_regions).map(|i| s.at(0, world.config.n_industries + i)).sum();
            assert_eq!(ind_sum, 1.0);
            assert_eq!(reg_sum, 1.0);
        }
    }

    #[test]
    fn targets_are_future_months() {
        let (world, ds) = dataset();
        let fut = world.config.horizon_start();
        for v in 0..ds.n.min(10) {
            for h in 0..ds.horizon {
                assert_eq!(ds.targets_raw[v][h], world.shops[v].gmv[fut + h]);
            }
        }
    }

    #[test]
    fn new_old_grouping_respects_threshold() {
        let (_, ds) = dataset();
        let (new_g, old_g) = ds.new_old_groups(10);
        for &v in &new_g {
            assert!(ds.observed_len[v] < 10);
        }
        for &v in &old_g {
            assert!(ds.observed_len[v] >= 10);
        }
        assert_eq!(new_g.len() + old_g.len(), ds.splits.test.len());
    }

    #[test]
    fn denormalize_prediction_is_positive() {
        let (_, ds) = dataset();
        let pred = Tensor::from_vec(vec![1, 3], vec![3.0, 4.0, 4.5]);
        let out = ds.denormalize_prediction(&pred);
        assert!(out.iter().all(|&x| x >= 0.0));
        assert!(out[2] > out[1] && out[1] > out[0]);
        // Overshoot is clamped, not exploded.
        let wild = Tensor::from_vec(vec![1, 3], vec![50.0, 50.0, 50.0]);
        let capped = ds.denormalize_prediction(&wild);
        assert!(capped[0] <= ds.scaler.denormalize_pos(ds.max_model_z) + 1.0);
    }
}
