//! # gaia-synth
//!
//! Synthetic Alipay-like e-seller world: the stand-in for the paper's
//! proprietary dataset (3M shops, Jun 2019 - Dec 2020). The generator embeds
//! the three phenomena the paper's model design targets — temporal
//! deficiency, intra temporal shift (annual seasonality) and inter temporal
//! shift (supplier lead over retailers) — plus same-owner festival coherence,
//! auxiliary temporal/static features and the typed e-seller graph.
//!
//! `features` mirrors the Fig. 5 extractor stack, producing model-ready
//! instances with a train-fitted `log1p`/z-score scaler.

pub mod config;
pub mod features;
pub mod mutate;
pub mod world;

pub use config::WorldConfig;
pub use features::{
    build_dataset, generate_dataset, node_row_unchanged, refresh_dataset, refresh_dataset_full,
    Dataset, Scaler, Splits, D_TEMPORAL, TARGET_SHIFT,
};
pub use mutate::{DirtySet, MonthlySales, NewShop};
pub use world::{month_of_year, Role, Shop, TrueSupplyLink, World};
