//! Quickstart: generate a synthetic e-seller world, train Gaia for a few
//! epochs, and forecast the next three months of GMV for a handful of shops.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gaia_core::trainer::{predict_nodes, train, TrainConfig};
use gaia_core::{Gaia, GaiaConfig};
use gaia_synth::{generate_dataset, WorldConfig};

fn main() {
    // 1. A small world: 300 shops, 36 months, supply-chain + same-owner
    //    edges, skewed shop ages (the paper's temporal deficiency).
    let world_cfg = WorldConfig { n_shops: 300, ..WorldConfig::default() };
    let (world, ds) = generate_dataset(world_cfg);
    println!(
        "world: {} shops, {} edges, input window T={} months, horizon T'={}",
        ds.n,
        world.graph.num_edges(),
        ds.t,
        ds.horizon
    );

    // 2. Build Gaia with the paper's architecture (C=32, K=4 kernel groups,
    //    L=2 ITA-GCN layers) and train it.
    let cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
    let mut model = Gaia::new(cfg, 42);
    println!("Gaia parameters: {}", model.num_params());
    let tc = TrainConfig { epochs: 5, verbose: true, ..TrainConfig::default() };
    let report = train(&mut model, &ds, &world.graph, &tc);
    println!(
        "training done: first-epoch MSE {:.5} -> last-epoch MSE {:.5}",
        report.train_loss.first().unwrap(),
        report.train_loss.last().unwrap()
    );

    // 3. Forecast three test shops and compare to the ground truth.
    let shops: Vec<usize> = ds.splits.test.iter().take(3).copied().collect();
    let preds = predict_nodes(&model, &ds, &world.graph, &shops, 7, 4);
    for p in preds {
        let actual = ds.targets_raw_row(p.node);
        println!("\nshop {} (observed {} of {} months):", p.node, ds.observed_len[p.node], ds.t);
        for h in 0..ds.horizon {
            println!(
                "  month +{}: predicted {:>12.0}  actual {:>12.0}",
                h + 1,
                p.currency[h],
                actual[h]
            );
        }
    }
}
