//! Supply-chain scenario: the paper's motivating example of *inter temporal
//! shift* — a supplier's GMV moves months before its retailers', so the
//! e-seller graph lets Gaia forecast retailers whose own history is short.
//!
//! This example:
//! 1. generates a world with a strong supplier lead,
//! 2. re-mines the supply-chain relations from raw order logs (the Fig 5
//!    Relation Extractor path) and measures mining precision/recall,
//! 3. trains Gaia and shows that retailers with nearly no history are still
//!    forecast within a sane band thanks to their suppliers.
//!
//! Run with `cargo run --release --example supply_chain`.

use gaia_core::trainer::{predict_nodes, train, TrainConfig};
use gaia_core::{Gaia, GaiaConfig};
use gaia_graph::{mine_supply_chain, MiningConfig};
use gaia_synth::{generate_dataset, Role, WorldConfig};
use std::collections::HashSet;

fn main() {
    let world_cfg = WorldConfig {
        n_shops: 300,
        supplier_fraction: 0.35,
        noise_std: 0.05,
        ..WorldConfig::default()
    };
    let (world, ds) = generate_dataset(world_cfg);

    // --- Relation mining from order logs ---------------------------------
    let volumes: Vec<Vec<f32>> = world
        .shops
        .iter()
        .map(|s| s.orders.iter().map(|&x| (1.0 + x as f32).ln()).collect())
        .collect();
    let candidates = world.mining_candidates(12);
    let mined =
        mine_supply_chain(&volumes, &candidates, &MiningConfig { max_lag: 3, threshold: 0.75 });
    let truth: HashSet<(u32, u32)> =
        world.true_supply_links.iter().map(|l| (l.supplier, l.retailer)).collect();
    let hits = mined.iter().filter(|m| truth.contains(&(m.supplier, m.retailer))).count();
    println!(
        "mined {} supply relations from order logs ({} candidates scanned); {} coincide with \
         ground-truth links ({:.0}% precision)",
        mined.len(),
        candidates.len(),
        hits,
        100.0 * hits as f64 / mined.len().max(1) as f64
    );

    // --- Train Gaia --------------------------------------------------------
    let cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
    let mut model = Gaia::new(cfg, 9);
    let tc = TrainConfig { epochs: 6, verbose: false, ..TrainConfig::default() };
    train(&mut model, &ds, &world.graph, &tc);

    // --- Young retailers with supplier links ------------------------------
    let young_retailers: Vec<usize> = ds
        .splits
        .test
        .iter()
        .copied()
        .filter(|&v| {
            world.shops[v].role == Role::Retailer
                && ds.observed_len[v] < 8
                && world.graph.degree(v) >= 1
        })
        .take(5)
        .collect();
    println!("\nyoung retailers (observed < 8 months) forecast via their suppliers:");
    let preds = predict_nodes(&model, &ds, &world.graph, &young_retailers, 3, 4);
    for p in preds {
        let actual: f64 = ds.targets_raw_row(p.node).iter().sum();
        let predicted: f64 = p.currency.iter().sum();
        let suppliers = world
            .graph
            .neighbors(p.node)
            .iter()
            .filter(|nb| nb.ty == gaia_graph::EdgeType::SupplyChain)
            .count();
        println!(
            "  shop {:>4} ({} supply edges, {} observed months): predicted 3-month GMV {:>12.0}, \
             actual {:>12.0} (ratio {:.2})",
            p.node,
            suppliers,
            ds.observed_len[p.node],
            predicted,
            actual,
            predicted / actual.max(1.0)
        );
    }
}
