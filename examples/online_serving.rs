//! Online-serving scenario (Section VI / Fig 5): the monthly offline
//! pipeline trains and publishes Gaia; the online model server answers
//! real-time forecasts for new-coming e-sellers, survives a hot model swap,
//! and demonstrates the linear inference-time scaling the paper reports.
//!
//! Run with `cargo run --release --example online_serving`.

use gaia_core::trainer::TrainConfig;
use gaia_core::GaiaConfig;
use gaia_serving::{linearity_r2, ModelServer, OfflinePipeline};
use gaia_synth::{generate_dataset, WorldConfig};
use std::sync::Arc;

fn main() {
    let (world, ds0) = generate_dataset(WorldConfig { n_shops: 300, ..WorldConfig::default() });

    // --- Offline: first monthly execution ---------------------------------
    let model_cfg = GaiaConfig::new(ds0.t, ds0.horizon, ds0.d_t, ds0.d_s);
    let train_cfg = TrainConfig { epochs: 4, verbose: false, ..TrainConfig::default() };
    let mut pipeline = OfflinePipeline::new(model_cfg, train_cfg, 11);
    let (artifact, ds, report) = pipeline.execute_month(&world);
    println!(
        "offline pipeline v{}: trained in {:.1}s, final MSE {:.5}",
        artifact.version,
        report.epoch_seconds.iter().sum::<f64>(),
        artifact.final_train_loss
    );

    // --- Online: boot the server and serve newcomers ----------------------
    let server = Arc::new(ModelServer::new(&artifact, world.graph.clone(), ds.clone(), 5));
    let newcomers: Vec<usize> = ds.splits.test.iter().take(40).copied().collect();
    let (preds, stats) = server.serve_stream(&newcomers, 4);
    println!(
        "served {} real-time predictions through the worker pool \
         ({:.0}/s, p50 {:.2}ms, p99 {:.2}ms from enqueue)",
        preds.len(),
        stats.per_second,
        stats.latency_p50 * 1e3,
        stats.latency_p99 * 1e3
    );
    let p = &preds[0];
    println!(
        "  e.g. shop {}: next-3-month GMV forecast = {:?}",
        p.node,
        p.currency.iter().map(|v| v.round()).collect::<Vec<_>>()
    );

    // --- Monthly re-execution and hot swap --------------------------------
    let (artifact2, _, _) = pipeline.execute_month(&world);
    server.publish(&artifact2);
    println!("hot-swapped to model v{} with zero downtime", server.version());

    // --- Scaling curve ------------------------------------------------------
    let sizes = [100, 200, 400, 800];
    let curve = server.scaling_curve(&sizes, 4);
    println!("\ninference scaling (clients -> seconds):");
    for (n, s) in &curve {
        println!("  {n:>5} clients: {s:.3}s");
    }
    println!("linearity R^2 = {:.4} (paper: inference time scales linearly)", linearity_r2(&curve));
}
