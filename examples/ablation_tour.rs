//! Ablation tour: build the four Table II variants of Gaia (full, w/o ITA,
//! w/o FFL, w/o TEL), train each briefly on the same world and compare —
//! a miniature of the `table2_ablation` harness that also prints what each
//! variant structurally removes.
//!
//! Run with `cargo run --release --example ablation_tour`.

use gaia_core::trainer::{evaluate_loss, train, TrainConfig};
use gaia_core::{Gaia, GaiaConfig, GaiaVariant};
use gaia_synth::{generate_dataset, WorldConfig};

fn main() {
    let (world, ds) = generate_dataset(WorldConfig { n_shops: 250, ..WorldConfig::default() });
    let tc = TrainConfig { epochs: 4, verbose: false, ..TrainConfig::default() };

    let variants = [
        (GaiaVariant::Full, "full model: FFL + TEL kernel group + CAU-based ITA"),
        (
            GaiaVariant::NoIta,
            "CAU replaced by traditional self-attention (no conv locality, no mask)",
        ),
        (GaiaVariant::NoFfl, "fine-grained fusion replaced by one coarse projection"),
        (GaiaVariant::NoTel, "kernel group {2,4,8,16} replaced by a single {4xC;C} kernel"),
    ];

    println!("{:<10} {:>10} {:>12} {:>12}  structure", "variant", "params", "train MSE", "val MSE");
    for (variant, what) in variants {
        let cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s).with_variant(variant);
        let mut model = Gaia::new(cfg, 33);
        let report = train(&mut model, &ds, &world.graph, &tc);
        let val = evaluate_loss(&model, &ds, &world.graph, &ds.splits.val, 1, 4);
        println!(
            "{:<10} {:>10} {:>12.5} {:>12.5}  {}",
            variant.label(),
            model.num_params(),
            report.train_loss.last().unwrap(),
            val,
            what
        );
    }
    println!(
        "\nExpect the full model to reach the lowest validation MSE — each ablation removes \
         one of the mechanisms the paper credits (Table II)."
    );
}
