//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based data model, this vendored replacement
//! round-trips every value through a small JSON-shaped tree, [`Value`]:
//! [`Serialize`] lowers a Rust value into the tree, [`Deserialize`] lifts it
//! back. The `serde_json` stub then prints/parses that tree as JSON text.
//!
//! The derive macros (`#[derive(Serialize, Deserialize)]`) are re-exported
//! from `serde_derive` and cover the shapes this workspace uses: structs with
//! named fields, tuple structs, and enums with unit variants.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// JSON-shaped intermediate representation of any serialisable value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats and `None`).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so `u64::MAX` round-trips).
    UInt(u64),
    /// Finite floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up an object field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Borrow as a string, when this is [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a sequence, when this is [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric view as `f64`, when this is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// One-word description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Serialisation / deserialisation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self { msg: msg.to_string() }
    }

    /// Error for an object missing a required field.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Self::custom(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// Error for a value of the wrong shape.
    pub fn expected(what: &str, got: &Value) -> Self {
        Self::custom(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Lower a value into the [`Value`] tree.
pub trait Serialize {
    /// Produce the tree representation.
    fn to_value(&self) -> Value;
}

/// Lift a value back out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self`; fails with a descriptive [`Error`] on shape or
    /// range mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: u64 = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    _ => return Err(Error::expected("unsigned integer", v)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| Error::custom(format!("{u} out of range for i64")))?,
                    _ => return Err(Error::expected("integer", v)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as f64;
                if wide.is_finite() {
                    Value::Float(wide)
                } else {
                    // JSON has no NaN/Inf; match serde_json's `null`.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| Error::expected("number", v))
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("single-char string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single-char string, got {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq().ok_or_else(|| Error::expected("array", v))?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_seq().ok_or_else(|| Error::expected("array", v))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed.try_into().map_err(|_| Error::custom("array length mismatch after parse"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_seq().ok_or_else(|| Error::expected("tuple array", v))?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(Error::custom(format!(
                        "expected array of length {want}, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("start".to_string(), self.start.to_value()),
            ("end".to_string(), self.end.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for std::ops::Range<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let start = v.field("start").ok_or_else(|| Error::missing_field("Range", "start"))?;
        let end = v.field("end").ok_or_else(|| Error::missing_field("Range", "end"))?;
        Ok(T::from_value(start)?..T::from_value(end)?)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic across runs.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, val)| Ok((k.clone(), V::from_value(val)?))).collect()
            }
            _ => Err(Error::expected("object", v)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, val)| Ok((k.clone(), V::from_value(val)?))).collect()
            }
            _ => Err(Error::expected("object", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<f64> = Vec::from_value(&vec![1.0, 2.0].to_value()).unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn out_of_range_int_errors() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn tuples_roundtrip() {
        let t = (1usize, 2.5f64);
        let back: (usize, f64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }
}
