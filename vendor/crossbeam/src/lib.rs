//! Offline stand-in for `crossbeam`: the multi-producer multi-consumer
//! unbounded channel surface used by the serving worker pool.

pub mod channel {
    //! MPMC unbounded FIFO channel.
    //!
    //! Semantics mirror `crossbeam-channel`: cloning either endpoint adds a
    //! peer; `recv` blocks until a message arrives or every `Sender` is gone;
    //! `send` fails once every `Receiver` is gone.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are dropped;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are dropped.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty but senders remain.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Sending half; clonable for multiple producers.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half; clonable for multiple consumers.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap_or_else(|e| e.into_inner()).senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                // Wake blocked receivers so they can observe disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, blocking until one arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.ready.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking dequeue.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap_or_else(|e| e.into_inner()).receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.state.lock().unwrap_or_else(|e| e.into_inner()).receivers -= 1;
        }
    }

    /// Iterator over received messages; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_single_thread() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn iter_drains_until_disconnect() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        }

        #[test]
        fn mpmc_worker_pool() {
            let (tx, rx) = unbounded::<usize>();
            let (out_tx, out_rx) = unbounded::<usize>();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let rx = rx.clone();
                    let out = out_tx.clone();
                    scope.spawn(move || {
                        while let Ok(v) = rx.recv() {
                            out.send(v * 2).unwrap();
                        }
                    });
                }
                drop(out_tx);
                let mut got: Vec<usize> = out_rx.iter().collect();
                got.sort_unstable();
                assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
            });
        }

        #[test]
        fn send_fails_after_receivers_gone() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }
    }
}
