//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with an optional `#![proptest_config(...)]` header, range and tuple
//! strategies, `prop::collection::vec`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic**: case seeds are derived from the test name and case
//!   index, so every run (local or CI) explores the same inputs. Set
//!   `PROPTEST_CASES` to override the case count.
//! * **No shrinking**: a failure reports the exact failing input and its
//!   seed, and the seed is persisted under `proptest-regressions/` so it is
//!   replayed first on subsequent runs.

pub mod strategy;
pub mod test_runner;

/// Strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests over sampled inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)) => {};
    (@impl ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                |rng| ($( $crate::strategy::Strategy::generate(&($strat), rng), )+),
                |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
