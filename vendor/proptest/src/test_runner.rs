//! Case execution, deterministic seeding and regression persistence.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::path::PathBuf;

/// Runner configuration; only `cases` is interpreted.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// RNG handed to strategies. Wraps the vendored deterministic [`StdRng`].
pub struct TestRng {
    /// Underlying generator; public so strategies can sample from it.
    pub rng: StdRng,
}

/// FNV-1a, used to derive a per-test seed namespace from the test name.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn regression_file(test_name: &str) -> PathBuf {
    PathBuf::from("proptest-regressions").join(format!("{}.txt", test_name.replace("::", "-")))
}

fn load_regression_seeds(test_name: &str) -> Vec<u64> {
    std::fs::read_to_string(regression_file(test_name))
        .map(|text| {
            text.lines()
                .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
                .filter_map(|l| l.trim().parse().ok())
                .collect()
        })
        .unwrap_or_default()
}

fn persist_regression_seed(test_name: &str, seed: u64) {
    let path = regression_file(test_name);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut seeds = load_regression_seeds(test_name);
    if !seeds.contains(&seed) {
        seeds.push(seed);
        let body: String = std::iter::once(
            "# Seeds of previously failing cases, replayed before new cases. Safe to commit.\n"
                .to_string(),
        )
        .chain(seeds.iter().map(|s| format!("{s}\n")))
        .collect();
        let _ = std::fs::write(&path, body);
    }
}

/// Execute one property: regression seeds first, then `cases` fresh cases
/// with seeds derived deterministically from the test name.
pub fn run<V, G, F>(config: &ProptestConfig, test_name: &str, mut generate: G, mut case: F)
where
    V: fmt::Debug + Clone,
    G: FnMut(&mut TestRng) -> V,
    F: FnMut(V) -> Result<(), TestCaseError>,
{
    let cases =
        std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(config.cases);
    let namespace = fnv1a(test_name);

    let mut execute = |seed: u64, origin: &str| {
        let mut rng = TestRng { rng: StdRng::seed_from_u64(seed) };
        let value = generate(&mut rng);
        if let Err(err) = case(value.clone()) {
            persist_regression_seed(test_name, seed);
            panic!(
                "proptest case failed ({origin}, seed {seed}): {err}\n\
                 input: {value:?}\n\
                 (seed persisted to {})",
                regression_file(test_name).display()
            );
        }
    };

    for seed in load_regression_seeds(test_name) {
        execute(seed, "regression replay");
    }
    for i in 0..cases {
        execute(namespace.wrapping_add(i as u64), "fresh case");
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuple_strategies_compose(pairs in prop::collection::vec((0usize..3, 0usize..3), 0..4)) {
            prop_assert!(pairs.len() < 4);
            for (a, b) in pairs {
                prop_assert!(a < 3 && b < 3);
            }
        }
    }

    #[test]
    fn failures_panic_with_input() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run(
                &ProptestConfig::with_cases(4),
                "vendored-proptest-selftest-must-fail",
                |rng| (crate::strategy::Strategy::generate(&(0usize..100), rng),),
                |(x,)| {
                    if x < 1000 {
                        Err(TestCaseError::fail("always fails"))
                    } else {
                        Ok(())
                    }
                },
            );
        });
        assert!(result.is_err(), "failing property must panic");
        // Clean up the regression file the failing selftest persisted.
        let _ = std::fs::remove_file(crate::test_runner::regression_file(
            "vendored-proptest-selftest-must-fail",
        ));
    }
}
