//! Input-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for sampling values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Strategy for `Vec`s with element strategy `S` and a length range.
pub struct VecStrategy<S: Strategy> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n =
            if self.len.is_empty() { self.len.start } else { rng.rng.gen_range(self.len.clone()) };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}
