//! Sequence-related sampling: shuffling and element choice.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// Uniformly chosen element, or `None` when empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
