//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator, seeded through SplitMix64.
///
/// Not the upstream `StdRng` algorithm (ChaCha12), but a high-quality,
/// allocation-free PRNG whose stream is a pure function of the seed — which is
/// the property the workspace's tests and benchmarks depend on. Not
/// cryptographically secure.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
