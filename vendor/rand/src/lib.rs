//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment has no registry access, so the workspace vendors the
//! narrow slice of `rand` it actually uses: [`RngCore`]/[`Rng`]/[`SeedableRng`],
//! [`rngs::StdRng`] (a deterministic xoshiro256++ seeded via SplitMix64),
//! uniform range sampling and Fisher–Yates [`seq::SliceRandom`].
//!
//! Determinism is a feature here, not a compromise: every generator is a pure
//! function of its `seed_from_u64` seed, on every platform, which is exactly
//! what the reproduction's tests and benchmarks rely on.

pub mod rngs;
pub mod seq;

/// Low-level uniform random source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose whole stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a uniformly distributed value of `Self` ("standard"
/// distribution: `[0, 1)` for floats, full range for integers).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 random mantissa bits -> uniform [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over half-open / closed intervals.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    ///
    /// # Panics
    /// Panics on an empty interval.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "gen_range: empty range {lo}..{hi}");
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range: empty range"
                );
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range expression that can produce one uniformly distributed sample.
///
/// Single blanket impl per range shape — mirroring upstream `rand` — so type
/// inference unifies the sampled type with the range's element type.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(lo, hi, true, rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a standard-distributed value (uniform `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Common re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y: f32 = rng.gen_range(0.5f32..0.9);
            assert!((0.5..0.9).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(3usize..=4);
            assert!(v == 3 || v == 4);
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
