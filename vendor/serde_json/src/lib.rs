//! Offline stand-in for `serde_json`: prints and parses the vendored
//! [`serde::Value`] tree as JSON text.
//!
//! Floats are written with Rust's shortest round-trip formatting, so an
//! `f64` (and therefore any widened `f32`) survives
//! serialize → parse → deserialize bit-exactly — which the model checkpoint
//! round-trip in `gaia-nn`/`gaia-core` relies on.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by JSON encoding/decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Self { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e)
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None);
    Ok(out)
}

/// Serialize a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(0));
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

fn write_indent(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_value(v: &Value, out: &mut String, pretty: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) if f.is_finite() => {
            // `{:?}` is the shortest representation that round-trips f64.
            out.push_str(&format!("{f:?}"));
        }
        // JSON has no NaN/inf. The Serialize impls already lower non-finite
        // floats to Null; catch hand-built Value::Float(NaN) the same way so
        // the writer always emits valid JSON.
        Value::Float(_) => out.push_str("null"),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = pretty {
                    write_indent(out, level + 1);
                }
                write_value(item, out, pretty.map(|l| l + 1));
            }
            if let Some(level) = pretty {
                if !items.is_empty() {
                    write_indent(out, level);
                }
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = pretty {
                    write_indent(out, level + 1);
                }
                write_string(key, out);
                out.push(':');
                if pretty.is_some() {
                    out.push(' ');
                }
                write_value(val, out, pretty.map(|l| l + 1));
            }
            if let Some(level) = pretty {
                if !entries.is_empty() {
                    write_indent(out, level);
                }
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.unicode_escape()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a trailing \uXXXX.
                                self.pos += 1;
                                self.expect(b'\\')?;
                                if self.peek() != Some(b'u') {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.unicode_escape()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    /// Parse the `uXXXX` at the cursor (cursor on the `u`); returns the code
    /// unit, leaving the cursor on the final hex digit.
    fn unicode_escape(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(from_str::<i64>("-9").unwrap(), -9);
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        for &x in &[0.1f64, 1e-300, 12345.678901234567, f64::MIN_POSITIVE, -0.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s} -> {back}");
        }
        for &x in &[0.1f32, f32::MIN_POSITIVE, 9.876_543f32] {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line1\nline\"2\"\\slash\tunicode: \u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // Explicit escape forms parse too.
        assert_eq!(from_str::<String>(r#""\u0041\ud83d\ude00""#).unwrap(), "A\u{1F600}");
    }

    #[test]
    fn vectors_and_nesting() {
        let v = vec![vec![1.0f64, 2.0], vec![3.0]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1.0,2.0],[3.0]]");
        assert_eq!(from_str::<Vec<Vec<f64>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(usize, f64)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn error_on_garbage() {
        assert!(from_str::<u32>("nope").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
