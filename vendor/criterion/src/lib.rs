//! Offline stand-in for `criterion`.
//!
//! Implements the macro and builder surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::default()` with
//! `warm_up_time`/`measurement_time`/`sample_size`, benchmark groups,
//! `bench_with_input` and `Bencher::iter` — over a simple wall-clock
//! measurement loop (median of per-sample means; no statistics engine).
//!
//! CLI behaviour: a positional argument filters benchmarks by substring;
//! `--test` (passed by `cargo test --benches`) runs each benchmark once for
//! smoke coverage; other harness flags (`--bench`, `--verbose`, ...) are
//! accepted and ignored.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier for a parameterised benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id rendered from one parameter value, e.g. `group/64`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }

    /// Id from a function name plus parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self { id: format!("{function}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` for the configured number of iterations, timing the
    /// whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark harness configuration and driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--profile-time" | "--save-baseline" | "--baseline" | "--load-baseline"
                | "--sample-size" | "--warm-up-time" | "--measurement-time" => {
                    args.next();
                }
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Self {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 10,
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up = duration;
        self
    }

    /// Set the measurement duration.
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement = duration;
        self
    }

    /// Set the number of measurement samples.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let id = id.to_string();
        self.run_one(&id, None, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, sample_size: Option<usize>, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        if self.test_mode {
            f(&mut bencher);
            println!("test {id} ... ok (1 iteration)");
            return;
        }

        // Warm-up while calibrating the per-batch iteration count.
        let warm_up_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        while warm_up_start.elapsed() < self.warm_up {
            f(&mut bencher);
            per_iter = bencher.elapsed.max(Duration::from_nanos(1)) / bencher.iters as u32;
            // Grow batches toward ~10ms so timer overhead stays negligible.
            let target = Duration::from_millis(10);
            let next = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24);
            bencher.iters = next as u64;
        }

        let samples = sample_size.unwrap_or(self.sample_size).max(2);
        let budget_per_sample = self.measurement / samples as u32;
        let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 28);
        bencher.iters = iters as u64;
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            f(&mut bencher);
            per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let lo = per_iter_ns[0];
        let hi = per_iter_ns[per_iter_ns.len() - 1];
        println!(
            "{id:<50} time: [{} {} {}]  ({} iters/sample, {} samples)",
            format_ns(lo),
            format_ns(median),
            format_ns(hi),
            bencher.iters,
            samples
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples.max(2));
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.sample_size, f);
    }

    /// Run one parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.sample_size, |b| f(b, input));
    }

    /// Close the group (printing nothing; exists for API parity).
    pub fn finish(self) {}
}

/// Define a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut count = 0u64;
        let mut b = Bencher { iters: 17, elapsed: Duration::ZERO };
        b.iter(|| count += 1);
        assert_eq!(count, 17);
        assert!(b.elapsed > Duration::ZERO || count == 17);
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
