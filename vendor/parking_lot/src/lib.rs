//! Offline stand-in for `parking_lot`: the non-poisoning `RwLock`/`Mutex`
//! API over `std::sync` primitives. Poisoned locks are transparently
//! recovered, matching parking_lot's "no poisoning" semantics.

/// Read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access (blocking).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access (blocking).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutual exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (blocking).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() = 2;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
