//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! stand-in.
//!
//! The registry is unreachable in this build environment, so there is no
//! `syn`/`quote`; the item is parsed directly from the `proc_macro` token
//! stream. Supported shapes — which cover every derive site in the
//! workspace — are:
//!
//! * structs with named fields (serialised as a JSON object),
//! * tuple structs (1 field: transparent newtype; N fields: array),
//! * enums, externally tagged like upstream serde: unit variants as the
//!   variant-name string, newtype variants as `{"Variant": value}`, tuple
//!   variants as `{"Variant": [..]}` and struct variants as
//!   `{"Variant": {..}}`.
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported and
//! produce a compile error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Tuple struct with N unnamed fields.
    Tuple { name: String, arity: usize },
    /// Enum.
    Enum { name: String, variants: Vec<Variant> },
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Skip leading outer attributes (`#[...]`, including expanded doc comments).
fn skip_attributes(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde_derive: malformed attribute, found {other:?}"),
                }
            }
            _ => return,
        }
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...), if present.
fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }

    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Struct { fields: parse_named_fields(&name, g.stream()), name }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::Tuple { arity: parse_tuple_arity(g.stream()), name }
            }
            other => panic!("serde_derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { variants: parse_variants(&name, g.stream()), name }
            }
            other => panic!("serde_derive: expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Collect field names from `{ a: T, pub b: U, ... }`, skipping types.
fn parse_named_fields(owner: &str, body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        let field = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name in `{owner}`, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after `{owner}.{field}`, found {other:?}"),
        }
        fields.push(field);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Count the fields of a tuple struct/variant `( T, U, ... )`.
fn parse_tuple_arity(body: TokenStream) -> usize {
    let mut commas = 0usize;
    let mut depth = 0i32;
    let mut last_was_comma = true; // empty stream -> zero fields
    for tok in body {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                last_was_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                last_was_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                last_was_comma = true;
            }
            _ => last_was_comma = false,
        }
    }
    if last_was_comma {
        // Trailing comma (or empty): commas == field count.
        commas
    } else {
        commas + 1
    }
}

/// Collect the variants of an enum body.
fn parse_variants(owner: &str, body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name in `{owner}`, found {other:?}"),
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(owner, g.stream());
                tokens.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_arity(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the comma.
        loop {
            match tokens.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn tuple_binders(arity: usize) -> Vec<String> {
    (0..arity).map(|i| format!("__f{i}")).collect()
}

/// `#[derive(Serialize)]`: lower into the `serde::Value` tree.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}",
                entries = entries.join(", ")
            )
        }
        Item::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::Tuple { name, arity } => {
            let items: Vec<String> =
                (0..arity).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(::std::vec![{items}])\n\
                     }}\n\
                 }}",
                items = items.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\"))"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binders = tuple_binders(*arity);
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({binders}) => \
                                 ::serde::Value::Map(::std::vec![(\
                                     ::std::string::String::from(\"{vname}\"), \
                                     ::serde::Value::Seq(::std::vec![{items}]))])",
                                binders = binders.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {fields} }} => \
                                 ::serde::Value::Map(::std::vec![(\
                                     ::std::string::String::from(\"{vname}\"), \
                                     ::serde::Value::Map(::std::vec![{entries}]))])",
                                fields = fields.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                arms = arms.join(",\n")
            )
        }
    };
    body.parse().expect("serde_derive: generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]`: lift back out of the `serde::Value` tree.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")\
                         .ok_or_else(|| ::serde::Error::missing_field(\"{name}\", \"{f}\"))?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if !matches!(v, ::serde::Value::Map(_)) {{\n\
                             return ::std::result::Result::Err(::serde::Error::expected(\"object for {name}\", v));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}",
                inits = inits.join(", ")
            )
        }
        Item::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Item::Tuple { name, arity } => {
            let inits: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let items = v.as_seq()\
                             .ok_or_else(|| ::serde::Error::expected(\"array for {name}\", v))?;\n\
                         if items.len() != {arity} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"expected {arity} elements for {name}, got {{}}\", items.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}({inits}))\n\
                     }}\n\
                 }}",
                inits = inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms: Vec<String> = Vec::new();
            let mut tagged_arms: Vec<String> = Vec::new();
            for v in &variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push(format!(
                        "::std::option::Option::Some(\"{vname}\") => \
                         return ::std::result::Result::Ok({name}::{vname})"
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push(format!(
                        "\"{vname}\" => \
                         return ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(payload)?))"
                    )),
                    VariantKind::Tuple(arity) => {
                        let inits: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vname}\" => {{\n\
                                 let items = payload.as_seq().ok_or_else(|| \
                                     ::serde::Error::expected(\"array for {name}::{vname}\", payload))?;\n\
                                 if items.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::Error::custom(\
                                         \"wrong tuple arity for {name}::{vname}\"));\n\
                                 }}\n\
                                 return ::std::result::Result::Ok({name}::{vname}({inits}));\n\
                             }}",
                            inits = inits.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(payload.field(\"{f}\")\
                                     .ok_or_else(|| ::serde::Error::missing_field(\
                                         \"{name}::{vname}\", \"{f}\"))?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vname}\" => return ::std::result::Result::Ok(\
                                 {name}::{vname} {{ {inits} }})",
                            inits = inits.join(", ")
                        ));
                    }
                }
            }
            let unit_match = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "match v.as_str() {{ {arms}, _ => {{}} }}\n",
                    arms = unit_arms.join(",\n")
                )
            };
            let tagged_match = if tagged_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::serde::Value::Map(entries) = v {{\n\
                         if entries.len() == 1 {{\n\
                             let (tag, payload) = &entries[0];\n\
                             #[allow(unused_variables)]\n\
                             match tag.as_str() {{ {arms}, _ => {{}} }}\n\
                         }}\n\
                     }}\n",
                    arms = tagged_arms.join(",\n")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {unit_match}\
                         {tagged_match}\
                         ::std::result::Result::Err(::serde::Error::expected(\"variant of {name}\", v))\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse().expect("serde_derive: generated Deserialize impl must parse")
}
