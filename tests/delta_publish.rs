//! Integration: hot swap **under churn** — serving threads hammer the
//! request path while incremental republishes ([`ModelServer::publish_delta`])
//! land concurrently. Complements the model-swap torn-read test in
//! `gaia-serving` by driving the swap with world deltas instead of retrains.
//!
//! What is pinned here:
//! - every served prediction is attributable to exactly the generation the
//!   reader's epoch says it served (no torn world/embedding mixtures),
//! - the epoch a context observes never moves backwards,
//! - a warm context allocates **zero** fresh tensor buffers across an entire
//!   chain of republishes (clean segments are shared, not copied, and the
//!   tape pool never sees a new shape),
//! - cache segments outside each delta's ego closure are carried into the
//!   next generation as the *same* `Arc` allocation.

use gaia_core::{EmbedCache, Gaia, GaiaConfig, GraphForecaster};
use gaia_graph::{dirty_closure, EgoConfig};
use gaia_serving::{ModelArtifact, ModelServer};
use gaia_synth::{generate_dataset, DirtySet, MonthlySales, World, WorldConfig};

const N_SHOPS: usize = 160;
const GENERATIONS: usize = 6;

/// Boot a server over a deterministic untrained model (republish behaviour
/// does not depend on training) plus the world it serves.
fn boot() -> (ModelServer, World) {
    let wc = WorldConfig { n_shops: N_SHOPS, seed: 77, ..WorldConfig::tiny() };
    let (world, ds) = generate_dataset(wc);
    let mut cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
    cfg.channels = 8;
    cfg.kernel_groups = 2;
    cfg.layers = 1;
    cfg.ego = EgoConfig { hops: 1, fanout: 3 };
    let model = Gaia::new(cfg.clone(), 13);
    let artifact = ModelArtifact {
        version: 1,
        config: cfg,
        checkpoint: model.checkpoint(),
        final_train_loss: 0.0,
    };
    let server = ModelServer::new(&artifact, world.graph.clone(), ds, 42);
    (server, world)
}

/// The scripted churn chain: generation `g` rewrites one shop's recent
/// history (deep enough to move its feature window). Returns the world
/// state and dirty set at every generation, so the same chain can be
/// replayed on a shadow server to precompute expected answers.
fn churn_chain(world: &World, horizon: usize) -> Vec<(World, DirtySet)> {
    let mut w = world.clone();
    let mut chain = Vec::with_capacity(GENERATIONS);
    for g in 1..=GENERATIONS {
        let shop = ((g * 13) % N_SHOPS) as u32;
        let window: Vec<MonthlySales> = (0..horizon + 2)
            .map(|m| MonthlySales {
                gmv: 1_000.0 * g as f64 + 41.0 * m as f64,
                orders: 20.0 + g as f64,
                customers: 9.0 + m as f64,
            })
            .collect();
        w.record_sales(shop, &window);
        let dirty = w.take_dirty();
        chain.push((w.clone(), dirty));
    }
    chain
}

/// Readers hammer one probe shop while the publisher lands the whole delta
/// chain. Every prediction must equal the shadow-server answer for exactly
/// the generation the context's epoch reports, epochs must be monotone, and
/// a warm context must stay at zero fresh tape allocations throughout.
#[test]
fn repeated_delta_publish_under_load_serves_consistent_generations() {
    let (server, world) = boot();
    let horizon = server.snapshot().ds.horizon;
    let chain = churn_chain(&world, horizon);
    let probe = 13usize; // dirtied by generation 1, then stable

    // Shadow replay: expected[g] is the probe's answer under generation g.
    let (shadow, _) = boot();
    let mut expected = vec![shadow.predict_one(probe).model_space.clone()];
    for (w, dirty) in &chain {
        shadow.publish_delta(w, dirty);
        expected.push(shadow.predict_one(probe).model_space.clone());
    }
    // The chain must actually change the probe's prediction at least once —
    // otherwise the attribution assertion below would be vacuous.
    assert!(expected.windows(2).any(|p| p[0] != p[1]), "churn chain never moved the probe");

    std::thread::scope(|scope| {
        for _ in 0..3 {
            let server = &server;
            let expected = &expected;
            scope.spawn(move || {
                let mut ctx = server.inference_context();
                // Warm the tape on the first request; from then on the
                // republishes must never cost this context an allocation.
                let _ = ctx.predict(probe);
                let warm_allocs = ctx.tape_fresh_allocs();
                let mut last_epoch = 0u64;
                for _ in 0..200 {
                    let pred = ctx.predict(probe);
                    // predict() revalidated the reader, so seen_epoch IS the
                    // generation that produced `pred` (one publish = one
                    // epoch bump on this server).
                    let epoch = ctx.snapshot_epoch();
                    assert!(epoch >= last_epoch, "epoch went backwards: {last_epoch} -> {epoch}");
                    last_epoch = epoch;
                    assert_eq!(
                        pred.model_space, expected[epoch as usize],
                        "prediction not attributable to the generation of epoch {epoch}"
                    );
                    assert_eq!(
                        ctx.tape_fresh_allocs(),
                        warm_allocs,
                        "a republish cost a warm context a fresh tape allocation"
                    );
                }
            });
        }
        scope.spawn(|| {
            for (w, dirty) in &chain {
                server.publish_delta(w, dirty);
                std::thread::yield_now();
            }
        });
    });

    let snap = server.snapshot();
    assert_eq!(snap.world_rev, GENERATIONS as u64);
    assert_eq!(snap.version, 1, "no retrain happened");
    assert_eq!(server.publishes(), GENERATIONS as u64);
    // Post-churn, a fresh context serves the final generation's answer.
    assert_eq!(server.predict_one(probe).model_space, expected[GENERATIONS]);
}

/// Across the whole republish chain, every cache segment outside a delta's
/// ego closure is carried into the next generation as the same `Arc`
/// allocation — the O(dirty·ego) memory claim, end to end.
#[test]
fn republish_chain_shares_clean_segments_between_adjacent_generations() {
    let (server, world) = boot();
    let snap0 = server.snapshot();
    let radius = snap0.model.ego_config().hops;
    let chain = churn_chain(&world, snap0.ds.horizon);

    let mut prev = snap0;
    let mut shared_total = 0usize;
    for (gen, (w, dirty)) in chain.iter().enumerate() {
        let stats = server.publish_delta(w, dirty);
        let next = server.snapshot();
        let closure = dirty_closure(&w.graph, dirty.nodes(), radius);
        assert_eq!(stats.closure_nodes, closure.len());
        // Each generation rewrites exactly one shop's history, so exactly
        // one feature row moves and exactly one segment is rebuilt; the
        // shop's closure neighbours refresh to bit-identical rows and keep
        // their cached entries.
        assert_eq!(stats.recomputed_nodes, 1, "generation {gen} recomputed more than the delta");
        let rebuilt = EmbedCache::segment_of(((gen + 1) * 13) % N_SHOPS);
        for seg in 0..prev.embeddings.segment_count() {
            let (b, a) = (prev.embeddings.segment_addr(seg), next.embeddings.segment_addr(seg));
            if seg == rebuilt {
                assert_ne!(b, a, "generation {gen}: the rewritten shop's segment not rebuilt");
            } else {
                assert_eq!(b, a, "generation {gen}: clean segment {seg} was copied");
                shared_total += 1;
            }
        }
        prev = next;
    }
    assert!(shared_total > 0, "the chain never shared a segment");
}
