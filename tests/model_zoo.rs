//! Cross-crate integration: every Table I / Table II model builds, trains a
//! step and produces finite, correctly-shaped, non-negative predictions on
//! the same dataset.

use gaia_core::trainer::{predict_batch_with, predict_nodes, train, InferenceScratch, TrainConfig};
use gaia_eval::{build_model, ModelKind};
use gaia_synth::{generate_dataset, WorldConfig};
use std::fmt::Write as _;

#[test]
fn every_neural_model_trains_and_predicts() {
    let (world, ds) = generate_dataset(WorldConfig { n_shops: 90, ..WorldConfig::tiny() });
    let tc = TrainConfig { epochs: 1, batch_size: 32, verbose: false, ..TrainConfig::default() };
    let nodes: Vec<usize> = ds.splits.test.iter().take(6).copied().collect();
    for &kind in ModelKind::table1_neural().iter().chain(ModelKind::table2()) {
        let mut model = build_model(kind, &ds, 3);
        let report = train(&mut *model, &ds, &world.graph, &tc);
        assert!(
            report.train_loss.iter().all(|l| l.is_finite()),
            "{:?} diverged: {:?}",
            kind,
            report.train_loss
        );
        let preds = predict_nodes(&*model, &ds, &world.graph, &nodes, 11, 2);
        assert_eq!(preds.len(), nodes.len(), "{kind:?}");
        for p in &preds {
            assert_eq!(p.currency.len(), ds.horizon, "{kind:?}");
            assert!(
                p.currency.iter().all(|v| v.is_finite() && *v >= 0.0),
                "{kind:?} produced invalid currency {:?}",
                p.currency
            );
            assert!(
                p.model_space.iter().all(|v| v.is_finite() && *v >= 0.0),
                "{kind:?} model space must be ReLU-non-negative: {:?}",
                p.model_space
            );
        }
    }
}

/// Path of the committed golden prediction fixtures, relative to the crate
/// root (where `cargo test` runs integration tests).
const GOLDEN_PATH: &str = "tests/golden/predictions.txt";

/// Tier of the **current build**: the scalar kernel fallbacks reproduce
/// the committed fixture bit-for-bit; the `simd` build swaps libm
/// exp/tanh for polynomial approximations, so its bits legitimately
/// drift by a few ulp and are compared under tolerance instead.
const BUILD_TIER: &str = if cfg!(feature = "simd") { "tolerance" } else { "bit-exact" };

/// Tolerance for the `tolerance` tier, per value: `|got - want| ≤
/// GOLDEN_ABS + GOLDEN_REL · |want|`. The polynomial transcendentals are
/// accurate to ~2 ulp per call (≲ 2⁻²² relative); a whole forward pass
/// accumulates well under 1e-5 relative on the model-space outputs, so
/// 1e-4 keeps two orders of margin while still catching real numeric
/// regressions (which show up at 1e-2+).
const GOLDEN_REL: f32 = 1e-4;
const GOLDEN_ABS: f32 = 1e-6;

/// Tier recorded in a fixture's `# tier:` header (`bit-exact` when absent
/// — fixtures predate the header).
fn fixture_tier(fixture: &str) -> &str {
    fixture
        .lines()
        .find_map(|l| l.strip_prefix("# tier: "))
        .map(|t| t.trim())
        .unwrap_or("bit-exact")
}

/// Data lines (label + hex bit patterns) of a fixture, comments stripped.
fn fixture_data(fixture: &str) -> Vec<&str> {
    fixture.lines().filter(|l| !l.starts_with('#') && !l.trim().is_empty()).collect()
}

/// Tolerance-tier comparison: identical labels, every f32 within
/// `GOLDEN_ABS + GOLDEN_REL·|want|` of the committed value.
fn assert_golden_within_tolerance(committed: &str, rendered: &str) {
    let (want_lines, got_lines) = (fixture_data(committed), fixture_data(rendered));
    assert_eq!(
        want_lines.len(),
        got_lines.len(),
        "golden fixture {GOLDEN_PATH}: line count changed"
    );
    // A line is `<label...> node=<id> <hex>...` where the label may itself
    // contain spaces (e.g. the `w/o ITA` ablations) — split after `node=`.
    fn split_line(line: &str) -> (&str, &str) {
        let node = line.find("node=").expect("fixture line without node= field");
        let hex_at = line[node..].find(' ').map(|o| node + o).unwrap_or(line.len());
        (&line[..hex_at], &line[hex_at..])
    }
    for (want, got) in want_lines.iter().zip(&got_lines) {
        let (wl, wh_all) = split_line(want);
        let (gl, gh_all) = split_line(got);
        assert_eq!(wl, gl, "golden label drift: `{want}` vs `{got}`");
        for (wh, gh) in wh_all.split_whitespace().zip(gh_all.split_whitespace()) {
            let w = f32::from_bits(u32::from_str_radix(wh, 16).expect("bad hex in fixture"));
            let g = f32::from_bits(u32::from_str_radix(gh, 16).expect("bad hex in render"));
            assert!(
                (g - w).abs() <= GOLDEN_ABS + GOLDEN_REL * w.abs(),
                "golden drift beyond the {BUILD_TIER} tier on `{want}`: {g} vs {w} \
                 (|Δ| = {}, budget {})",
                (g - w).abs(),
                GOLDEN_ABS + GOLDEN_REL * w.abs()
            );
        }
    }
}

/// Render the golden fixture: for every model-zoo configuration on the
/// fixed-seed world, the exact f32 bit patterns of its predictions.
fn render_golden() -> String {
    let (world, ds) = generate_dataset(WorldConfig { n_shops: 90, ..WorldConfig::tiny() });
    let nodes: Vec<usize> = ds.splits.test.iter().take(4).copied().collect();
    let mut out = String::from(
        "# Golden predictions for the model-zoo configurations (fixed-seed world:\n\
         # n_shops=90 over WorldConfig::tiny, model seed 3, prediction seed 11).\n\
         # One line per model and centre: `<label> node=<id> <f32 bit patterns in hex>`\n\
         # (model-space predictions from predict_nodes; predict_batch_with is asserted\n\
         # equal to these same bits, so the fixture locks BOTH inference paths).\n\
         # Any drift fails tests/model_zoo.rs::golden_predictions_have_not_drifted.\n\
         #\n\
         # Reference platform: x86_64-unknown-linux-gnu (the CI target). The\n\
         # bits go through libm transcendentals (exp/tanh), so a different\n\
         # libm (macOS, musl, a future glibc) may legitimately differ by an\n\
         # ulp — if the suite fails ONLY on a non-reference platform with no\n\
         # code change, that is platform drift, not a regression.\n\
         #\n\
         # To regenerate after an INTENTIONAL numeric change (on the\n\
         # reference platform):\n\
         #     UPDATE_GOLDEN=1 cargo test -q --test model_zoo golden\n\
         # then eyeball the diff and commit it together with the change.\n\
         # Regenerate WITHOUT the `simd` feature (--no-default-features) so\n\
         # the committed tier stays `bit-exact` — the scalar build then\n\
         # checks bits exactly and simd builds check against tolerance.\n",
    );
    // Tier of the build that produced these bits; see BUILD_TIER.
    writeln!(out, "# tier: {BUILD_TIER}").unwrap();
    let mut seen = Vec::new();
    for &kind in ModelKind::table1_neural().iter().chain(ModelKind::table2()) {
        if seen.contains(&kind.label()) {
            continue; // Gaia appears in both tables.
        }
        seen.push(kind.label());
        let model = build_model(kind, &ds, 3);
        let preds = predict_nodes(&*model, &ds, &world.graph, &nodes, 11, 2);
        // The batched path must produce the same bits (parity contract).
        let mut scratch = InferenceScratch::new();
        let batched = predict_batch_with(&*model, &ds, &world.graph, &nodes, 11, &mut scratch);
        for (p, b) in preds.iter().zip(&batched) {
            assert_eq!(
                p.model_space, b.model_space,
                "{kind:?}: batched predictions diverge from predict_nodes"
            );
            let mut line = format!("{} node={}", kind.label(), p.node);
            for &v in &p.model_space {
                write!(line, " {:08x}", v.to_bits()).unwrap();
            }
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// GOLDEN REGRESSION WALL, in two tiers. The committed fixture is
/// regenerated on the **scalar** build (`--no-default-features`), whose
/// bits it records exactly (`# tier: bit-exact`):
///
/// * a scalar build compares **bit for bit** — any single-ulp change in
///   the scalar kernels fails here;
/// * a `simd` build uses polynomial exp/tanh (a few ulp per call), so it
///   compares under [`GOLDEN_REL`]/[`GOLDEN_ABS`] tolerance instead.
///
/// The batched inference path must match predict_nodes bit-for-bit on
/// EVERY build, via the assertion inside [`render_golden`]. Set
/// `UPDATE_GOLDEN=1` to regenerate after an intentional change.
#[test]
fn golden_predictions_have_not_drifted() {
    let rendered = render_golden();
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all("tests/golden").expect("create tests/golden");
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden fixture");
        eprintln!(
            "golden fixture regenerated at {GOLDEN_PATH} (tier: {BUILD_TIER}); \
             diff and commit it"
        );
        return;
    }
    let committed = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("missing golden fixture {GOLDEN_PATH} ({e}); run UPDATE_GOLDEN=1 to create it")
    });
    // Bit-for-bit comparison only applies when BOTH sides are bit-exact:
    // the fixture was recorded from scalar kernels and this build runs
    // them. Everything else (simd build, or a fixture someone regenerated
    // on a simd build) gets the tolerance tier.
    if fixture_tier(&committed) != "bit-exact" || BUILD_TIER != "bit-exact" {
        assert_golden_within_tolerance(&committed, &rendered);
        return;
    }
    if committed != rendered {
        // Report the first diverging line, not a wall of hex.
        for (i, (want, got)) in committed.lines().zip(rendered.lines()).enumerate() {
            assert_eq!(
                want,
                got,
                "golden drift at {GOLDEN_PATH}:{} — if intentional, regenerate with \
                 UPDATE_GOLDEN=1 and commit the diff",
                i + 1
            );
        }
        panic!(
            "golden fixture {GOLDEN_PATH} length changed ({} vs {} lines)",
            committed.lines().count(),
            rendered.lines().count()
        );
    }
}

#[test]
fn training_step_changes_predictions() {
    let (world, ds) = generate_dataset(WorldConfig { n_shops: 90, ..WorldConfig::tiny() });
    let nodes: Vec<usize> = ds.splits.test.iter().take(4).copied().collect();
    for &kind in &[ModelKind::Gaia, ModelKind::Mtgnn, ModelKind::LogTrans] {
        let mut model = build_model(kind, &ds, 5);
        let before: Vec<Vec<f32>> = predict_nodes(&*model, &ds, &world.graph, &nodes, 1, 2)
            .into_iter()
            .map(|p| p.model_space)
            .collect();
        let tc =
            TrainConfig { epochs: 1, batch_size: 16, verbose: false, ..TrainConfig::default() };
        train(&mut *model, &ds, &world.graph, &tc);
        let after: Vec<Vec<f32>> = predict_nodes(&*model, &ds, &world.graph, &nodes, 1, 2)
            .into_iter()
            .map(|p| p.model_space)
            .collect();
        assert_ne!(before, after, "{kind:?}: training had no effect on predictions");
    }
}
