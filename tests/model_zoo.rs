//! Cross-crate integration: every Table I / Table II model builds, trains a
//! step and produces finite, correctly-shaped, non-negative predictions on
//! the same dataset.

use gaia_core::trainer::{predict_nodes, train, TrainConfig};
use gaia_eval::{build_model, ModelKind};
use gaia_synth::{generate_dataset, WorldConfig};

#[test]
fn every_neural_model_trains_and_predicts() {
    let (world, ds) = generate_dataset(WorldConfig { n_shops: 90, ..WorldConfig::tiny() });
    let tc = TrainConfig { epochs: 1, batch_size: 32, verbose: false, ..TrainConfig::default() };
    let nodes: Vec<usize> = ds.splits.test.iter().take(6).copied().collect();
    for &kind in ModelKind::table1_neural().iter().chain(ModelKind::table2()) {
        let mut model = build_model(kind, &ds, 3);
        let report = train(&mut *model, &ds, &world.graph, &tc);
        assert!(
            report.train_loss.iter().all(|l| l.is_finite()),
            "{:?} diverged: {:?}",
            kind,
            report.train_loss
        );
        let preds = predict_nodes(&*model, &ds, &world.graph, &nodes, 11, 2);
        assert_eq!(preds.len(), nodes.len(), "{kind:?}");
        for p in &preds {
            assert_eq!(p.currency.len(), ds.horizon, "{kind:?}");
            assert!(
                p.currency.iter().all(|v| v.is_finite() && *v >= 0.0),
                "{kind:?} produced invalid currency {:?}",
                p.currency
            );
            assert!(
                p.model_space.iter().all(|v| v.is_finite() && *v >= 0.0),
                "{kind:?} model space must be ReLU-non-negative: {:?}",
                p.model_space
            );
        }
    }
}

#[test]
fn training_step_changes_predictions() {
    let (world, ds) = generate_dataset(WorldConfig { n_shops: 90, ..WorldConfig::tiny() });
    let nodes: Vec<usize> = ds.splits.test.iter().take(4).copied().collect();
    for &kind in &[ModelKind::Gaia, ModelKind::Mtgnn, ModelKind::LogTrans] {
        let mut model = build_model(kind, &ds, 5);
        let before: Vec<Vec<f32>> = predict_nodes(&*model, &ds, &world.graph, &nodes, 1, 2)
            .into_iter()
            .map(|p| p.model_space)
            .collect();
        let tc =
            TrainConfig { epochs: 1, batch_size: 16, verbose: false, ..TrainConfig::default() };
        train(&mut *model, &ds, &world.graph, &tc);
        let after: Vec<Vec<f32>> = predict_nodes(&*model, &ds, &world.graph, &nodes, 1, 2)
            .into_iter()
            .map(|p| p.model_space)
            .collect();
        assert_ne!(before, after, "{kind:?}: training had no effect on predictions");
    }
}
