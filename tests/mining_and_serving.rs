//! Integration of the Fig 5 pipeline paths: supply-chain relation mining
//! from order logs, and offline-train → publish → online-predict parity.

use gaia_core::trainer::TrainConfig;
use gaia_core::GaiaConfig;
use gaia_graph::{mine_supply_chain, EgoConfig, MiningConfig};
use gaia_serving::{ModelServer, OfflinePipeline};
use gaia_synth::{generate_dataset, WorldConfig};
use std::collections::HashSet;
use std::sync::Arc;

/// Offline-vs-online parity predicate: bitwise on the default f32 cache
/// tier. Under `embed-f16` the server's publish-time cache quantises to
/// binary16, so the served answer may differ from the uncached offline pass
/// by the documented ~2^-11-relative budget (amplified through the network).
fn parity(got: &[f32], want: &[f32]) -> bool {
    got.len() == want.len()
        && got.iter().zip(want).all(|(g, w)| {
            if cfg!(feature = "embed-f16") {
                (g - w).abs() <= 5e-3 * w.abs().max(1.0)
            } else {
                g == w
            }
        })
}

#[test]
fn mined_relations_recover_true_supply_links() {
    let (world, _) =
        generate_dataset(WorldConfig { n_shops: 250, noise_std: 0.04, ..WorldConfig::default() });
    let volumes: Vec<Vec<f32>> = world
        .shops
        .iter()
        .map(|s| s.orders.iter().map(|&x| (1.0 + x as f32).ln()).collect())
        .collect();
    let candidates = world.mining_candidates(10);
    let mined =
        mine_supply_chain(&volumes, &candidates, &MiningConfig { max_lag: 3, threshold: 0.75 });
    assert!(!mined.is_empty(), "mining found nothing");
    let truth: HashSet<(u32, u32)> =
        world.true_supply_links.iter().map(|l| (l.supplier, l.retailer)).collect();
    let hits = mined.iter().filter(|m| truth.contains(&(m.supplier, m.retailer))).count();
    let precision = hits as f64 / mined.len() as f64;
    // In the synthetic world, a linked and an unlinked same-industry pair
    // carry *identical* market signal by construction (the supplier lead is
    // industry-wide), so link-level discrimination beyond industry
    // co-membership is not identifiable from series alone — in the real
    // system the candidate set comes from payment co-occurrence, which is
    // what provides that discrimination (see DESIGN.md). The identifiable
    // structure is the *lead*: mining must not be anti-enriched, and the
    // detected lags must match the generated supplier leads.
    let base_hits = candidates.iter().filter(|&&(s, r)| truth.contains(&(s, r))).count();
    let base_rate = base_hits as f64 / candidates.len() as f64;
    assert!(
        precision >= 0.9 * base_rate,
        "mining anti-enriched: precision {precision:.3} vs base rate {base_rate:.3} \
         ({hits}/{} mined, {base_hits}/{} candidates)",
        mined.len(),
        candidates.len()
    );
    // The detected lags of true hits should match the generated leads most
    // of the time.
    let lag_hits = mined
        .iter()
        .filter(|m| {
            world
                .true_supply_links
                .iter()
                .any(|l| l.supplier == m.supplier && l.retailer == m.retailer && l.lead == m.lag)
        })
        .count();
    assert!(lag_hits * 2 >= hits, "lag recovery too weak: {lag_hits}/{hits}");
}

#[test]
fn offline_online_prediction_parity() {
    let (world, ds0) = generate_dataset(WorldConfig { n_shops: 80, ..WorldConfig::tiny() });
    let mut model_cfg = GaiaConfig::new(ds0.t, ds0.horizon, ds0.d_t, ds0.d_s);
    model_cfg.channels = 8;
    model_cfg.kernel_groups = 2;
    model_cfg.layers = 1;
    model_cfg.ego = EgoConfig { hops: 1, fanout: 3 };
    let tc = TrainConfig { epochs: 1, batch_size: 16, verbose: false, ..TrainConfig::default() };
    let mut pipeline = OfflinePipeline::new(model_cfg.clone(), tc, 21);
    let (artifact, ds, _) = pipeline.execute_month(&world);

    // Offline predictions straight from a restored model...
    let mut offline_model = gaia_core::Gaia::new(model_cfg, 0);
    offline_model.restore(&artifact.checkpoint).unwrap();
    let nodes: Vec<usize> = ds.splits.test.iter().take(8).copied().collect();
    let offline =
        gaia_core::trainer::predict_nodes(&offline_model, &ds, &world.graph, &nodes, 42, 2);

    // ...must match the online server's answers exactly (same artifact, same
    // ego seed).
    let server = Arc::new(ModelServer::new(&artifact, world.graph.clone(), ds, 42));
    for o in offline {
        let online = server.predict_one(o.node);
        assert!(
            parity(&online.model_space, &o.model_space),
            "parity broke for shop {}: {:?} vs {:?}",
            o.node,
            online.model_space,
            o.model_space
        );
    }
}

/// End-to-end hot-swap-under-load: worker threads serve a stream through
/// per-worker inference contexts while the offline pipeline publishes new
/// generations. Every answer must match exactly one published generation
/// (version and parameters are swapped as one snapshot — a torn read would
/// match none), and the stream path must report coherent latency stats.
#[test]
fn serving_survives_hot_swap_under_stream_load() {
    let (world, ds0) = generate_dataset(WorldConfig::tiny());
    let mut model_cfg = GaiaConfig::new(ds0.t, ds0.horizon, ds0.d_t, ds0.d_s);
    model_cfg.channels = 8;
    model_cfg.kernel_groups = 2;
    model_cfg.layers = 1;
    model_cfg.ego = EgoConfig { hops: 1, fanout: 3 };
    let tc = TrainConfig { epochs: 1, batch_size: 16, verbose: false, ..TrainConfig::default() };
    let mut pipeline = OfflinePipeline::new(model_cfg, tc, 9);
    let (artifact, ds, _) = pipeline.execute_month(&world);
    let server = Arc::new(ModelServer::new(&artifact, world.graph.clone(), ds, 42));

    // Expected per-generation answers for a probe shop: generation 1 from
    // the live server, generation 2 from an offline restore of artifact 2.
    let probe = 4usize;
    let (artifact2, ds2, _) = pipeline.execute_month(&world);
    let mut gen2_model = gaia_core::Gaia::new(artifact2.config.clone(), 0);
    gen2_model.restore(&artifact2.checkpoint).unwrap();
    let expected = [
        server.predict_one(probe).model_space.clone(),
        gaia_core::trainer::predict_nodes(&gen2_model, &ds2, &world.graph, &[probe], 42, 1)
            .pop()
            .unwrap()
            .model_space,
    ];
    assert_ne!(expected[0], expected[1], "publish must change the served parameters");

    std::thread::scope(|scope| {
        let server_ref = &server;
        let expected_ref = &expected;
        let publisher = scope.spawn(move || {
            // Let readers start on generation 1, then swap mid-load.
            std::thread::yield_now();
            server_ref.publish(&artifact2);
        });
        for _ in 0..2 {
            scope.spawn(move || {
                let mut ctx = server_ref.inference_context();
                for _ in 0..40 {
                    let pred = ctx.predict(probe);
                    assert!(
                        expected_ref.iter().any(|e| parity(&pred.model_space, e)),
                        "answer matches no published generation (torn snapshot?)"
                    );
                }
            });
        }
        publisher.join().unwrap();
    });
    assert_eq!(server.version(), 2);

    // After the dust settles, a fresh context serves generation 2 and the
    // stream path reports per-request latency stats measured from enqueue.
    let shops: Vec<usize> = (0..30).map(|i| i % 10).collect();
    let (preds, stats) = server.serve_stream(&shops, 3);
    assert_eq!(preds.len(), shops.len());
    assert_eq!(preds[probe].node, probe, "results come back in request order");
    assert!(parity(&preds[probe].model_space, &expected[1]), "served answer matches generation 2");
    assert_eq!(stats.requests, 30);
    assert_eq!(stats.per_worker.len(), 3);
    assert_eq!(stats.per_worker.iter().sum::<usize>(), 30);
    assert!(stats.latency_p50 > 0.0 && stats.latency_p50 <= stats.latency_p95);
    assert!(stats.latency_p95 <= stats.latency_p99 && stats.latency_p99 <= stats.seconds * 1.001);
    assert!(stats.per_second > 0.0);
}
