//! End-to-end integration: world generation → dataset → Gaia training →
//! prediction quality sanity (beats a naive persistence forecast on the
//! validation split after a couple of epochs).

use gaia_core::trainer::{predict_nodes, train, TrainConfig};
use gaia_core::{Gaia, GaiaConfig};
use gaia_eval::{metrics_overall, Metrics};
use gaia_synth::{generate_dataset, WorldConfig};
use gaia_timeseries::persistence;

fn world_cfg() -> WorldConfig {
    WorldConfig { n_shops: 220, seed: 3, ..WorldConfig::default() }
}

/// Epoch budget: 8 epochs × 220 shops is the slowest test in the suite
/// (~1 min wall with the workspace's `opt-level = 2` test profile; tens of
/// minutes unoptimized — don't lower that profile setting). 8 is the minimum
/// at which Gaia reliably clears the persistence baseline across seeds;
/// raising it adds wall time without adding signal.
#[test]
fn gaia_beats_persistence_after_short_training() {
    let (world, ds) = generate_dataset(world_cfg());
    let cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
    let mut model = Gaia::new(cfg, 1);
    let tc = TrainConfig { epochs: 8, verbose: false, lr: 3e-3, ..TrainConfig::default() };
    let report = train(&mut model, &ds, &world.graph, &tc);
    assert!(
        report.train_loss.last().unwrap() < report.train_loss.first().unwrap(),
        "training must reduce loss: {:?}",
        report.train_loss
    );

    let nodes = ds.splits.val.clone();
    let preds = predict_nodes(&model, &ds, &world.graph, &nodes, 5, 4);
    let gaia_preds: Vec<Vec<f64>> = preds.iter().map(|p| p.currency.clone()).collect();

    // Persistence baseline: repeat the last observed month.
    let in_start = world.config.input_start();
    let fut_start = world.config.horizon_start();
    let naive: Vec<Vec<f64>> = nodes
        .iter()
        .map(|&v| {
            let shop = &world.shops[v];
            let hist: Vec<f64> =
                (in_start.max(shop.opened)..fut_start).map(|m| shop.gmv[m]).collect();
            persistence(&hist, ds.horizon)
        })
        .collect();
    let actual: Vec<Vec<f64>> = nodes.iter().map(|&v| ds.targets_raw_row(v).to_vec()).collect();

    let gaia_m: Metrics = metrics_overall(&gaia_preds, &actual);
    let naive_m: Metrics = metrics_overall(&naive, &actual);
    assert!(
        gaia_m.mape < naive_m.mape,
        "Gaia MAPE {:.4} should beat persistence {:.4}",
        gaia_m.mape,
        naive_m.mape
    );
}

#[test]
fn predictions_are_reproducible_across_runs() {
    let (world, ds) = generate_dataset(world_cfg());
    let mut cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
    cfg.channels = 8;
    cfg.kernel_groups = 2;
    cfg.layers = 1;
    let tc = TrainConfig { epochs: 1, verbose: false, ..TrainConfig::default() };

    let run = || {
        let mut model = Gaia::new(cfg.clone(), 77);
        train(&mut model, &ds, &world.graph, &tc);
        predict_nodes(&model, &ds, &world.graph, &ds.splits.test[..5], 9, 2)
            .into_iter()
            .map(|p| p.model_space)
            .collect::<Vec<_>>()
    };
    // Full determinism: same seeds, same data, same thread-invariant
    // gradient accumulation -> identical parameters and predictions.
    assert_eq!(run(), run());
}
