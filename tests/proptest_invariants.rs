//! Property-based tests over the core data structures and numerical
//! invariants, spanning several crates.

use gaia_core::half::{f16_to_f32, f32_to_f16};
use gaia_core::trainer::{predict_batch_with, predict_one_with, InferenceScratch};
use gaia_core::{Gaia, GaiaConfig, ProjSlot};
use gaia_graph::{extract_ego, Edge, EdgeType, EgoConfig, EsellerGraph};
use gaia_serving::{ModelArtifact, ModelServer, ShardedModelServer};
use gaia_synth::{
    build_dataset, generate_dataset, month_of_year, MonthlySales, NewShop, Role, Scaler, World,
    WorldConfig, D_TEMPORAL,
};
use gaia_tensor::kernels::{
    attention_probs_causal_into, attention_scores_into, conv1d_fused_into, matmul_batched_into,
    matmul_into, matmul_naive_into, matmul_nt_into, matmul_strided_into, matmul_tn_into,
    matmul_tri_lower_into, MATMUL_BLOCK,
};
use gaia_tensor::{conv1d, softmax_in_place, Activation, Graph, PadMode, Tensor};
use gaia_timeseries::{acf, auto_arima};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Apply one scripted world mutation. A `(kind, arg)` pair fully determines
/// the op, so replaying the same script on two copies of a world leaves
/// them identical — the premise of the delta-vs-full parity property.
fn apply_churn_op(world: &mut World, horizon: usize, kind: usize, arg: u64) {
    let n = world.shops.len();
    match kind {
        0 => {
            // History rewrite deep enough to cross from the target horizon
            // into the feature input window (a shallower write would only
            // move labels, not served predictions).
            let shop = (arg as usize % n) as u32;
            let months = horizon + 1 + arg as usize % 4;
            let base = 500.0 + (arg % 9_000) as f64;
            let window: Vec<MonthlySales> = (0..months)
                .map(|m| MonthlySales {
                    gmv: base + 37.0 * m as f64,
                    orders: 10.0 + (arg % 50) as f64,
                    customers: 5.0 + (arg % 20) as f64,
                })
                .collect();
            world.record_sales(shop, &window);
        }
        1 => {
            // Supply rewire between an arbitrary supplier/retailer pair.
            let pick = |role: Role, salt: u64| {
                let ids: Vec<u32> =
                    (0..n as u32).filter(|&v| world.shops[v as usize].role == role).collect();
                (!ids.is_empty()).then(|| ids[salt as usize % ids.len()])
            };
            if let (Some(s), Some(r)) = (pick(Role::Supplier, arg), pick(Role::Retailer, arg / 7)) {
                world.add_supply_edge(s, r);
            }
        }
        // Sever an existing supply link, if the world still has one.
        2 if !world.true_supply_links.is_empty() => {
            let idx = arg as usize % world.true_supply_links.len();
            let (s, r) =
                (world.true_supply_links[idx].supplier, world.true_supply_links[idx].retailer);
            world.remove_supply_edge(s, r);
        }
        3 => {
            // A brand-new shop with no history (the new-coming e-seller of
            // the paper): it must be servable straight after the republish.
            let donor = arg as usize % n;
            world.add_shop(NewShop {
                industry: world.shops[donor].industry,
                region: world.shops[donor].region,
                role: if arg.is_multiple_of(2) { Role::Retailer } else { Role::Supplier },
                owner: world.shops[donor].owner,
                lead: arg as usize % 3,
            });
        }
        4 => {
            // Industry churn: move a shop into another shop's bucket.
            let shop = (arg as usize % n) as u32;
            let target = world.shops[(arg / 11) as usize % n].industry;
            world.set_industry(shop, target);
        }
        // Explicit no-op: scripts of pure no-ops exercise the
        // empty-dirty-set republish, which must still be a valid publish.
        _ => {}
    }
}

/// Pick an activation from a sampled index (proptest-friendly enum choice).
fn activation_from_index(i: usize) -> Activation {
    match i % 4 {
        0 => Activation::Identity,
        1 => Activation::Relu,
        2 => Activation::Sigmoid,
        _ => Activation::Tanh,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// log1p scaling round-trips currency values across 8 orders of
    /// magnitude.
    #[test]
    fn scaler_roundtrip(values in prop::collection::vec(1.0f64..1e8, 4..40), probe in 1.0f64..1e8) {
        let scaler = Scaler::fit(values.into_iter());
        let z = scaler.normalize(probe);
        let back = scaler.denormalize(z);
        prop_assert!((back - probe).abs() / probe < 1e-2, "{probe} -> {z} -> {back}");
        // Positive space: non-negative input z always decodes to >= 0.
        let zp = scaler.normalize_pos(probe);
        prop_assert!(scaler.denormalize_pos(zp) >= 0.0);
    }

    /// Monotonicity: both normalisers preserve order.
    #[test]
    fn scaler_monotone(values in prop::collection::vec(1.0f64..1e7, 4..20), a in 1.0f64..1e6, b in 1.0f64..1e6) {
        let scaler = Scaler::fit(values.into_iter());
        if a < b {
            prop_assert!(scaler.normalize(a) <= scaler.normalize(b));
            prop_assert!(scaler.normalize_pos(a) <= scaler.normalize_pos(b));
        }
    }

    /// Softmax rows are probability distributions for arbitrary logits.
    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::randn(vec![rows, cols], 3.0, &mut rng);
        let s = t.softmax_rows();
        for r in 0..rows {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    /// conv1d preserves the time length for both padding modes and any
    /// kernel width up to the window.
    #[test]
    fn conv1d_shape_invariant(t_len in 2usize..20, c_in in 1usize..4, c_out in 1usize..4, k in 1usize..6, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(vec![t_len, c_in], 1.0, &mut rng);
        let w = Tensor::randn(vec![k, c_in, c_out], 1.0, &mut rng);
        for pad in [PadMode::Same, PadMode::Causal] {
            let y = conv1d(&x, &w, None, pad);
            prop_assert_eq!(y.shape(), &[t_len, c_out]);
            prop_assert!(y.all_finite());
        }
    }

    /// Causal conv output at position 0 never depends on later inputs.
    #[test]
    fn causal_conv_no_future_leak(t_len in 3usize..16, k in 1usize..5, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(vec![t_len, 2], 1.0, &mut rng);
        let w = Tensor::randn(vec![k, 2, 2], 1.0, &mut rng);
        let y0 = conv1d(&x, &w, None, PadMode::Causal);
        let mut x2 = x.clone();
        for t in 1..t_len {
            for c in 0..2 {
                *x2.at_mut(t, c) += 10.0;
            }
        }
        let y1 = conv1d(&x2, &w, None, PadMode::Causal);
        for c in 0..2 {
            prop_assert!((y0.at(0, c) - y1.at(0, c)).abs() < 1e-5);
        }
    }

    /// KERNEL PARITY — the blocked/unrolled matmul matches the naive
    /// reference elementwise across random shapes, including dimensions
    /// that are not multiples of the block size (the strided tail paths).
    #[test]
    fn blocked_matmul_matches_naive_reference(
        m in 1usize..40,
        k in 1usize..80,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Stretch some shapes across the block boundary so both the
        // full-block and remainder paths are exercised.
        let k = if seed % 3 == 0 { k + MATMUL_BLOCK } else { k };
        let a = Tensor::randn(vec![m, k], 1.0, &mut rng);
        let b = Tensor::randn(vec![k, n], 1.0, &mut rng);
        let mut naive = vec![0.0f32; m * n];
        matmul_naive_into(a.data(), b.data(), m, k, n, &mut naive);
        let mut blocked = vec![0.0f32; m * n];
        matmul_into(a.data(), b.data(), m, k, n, &mut blocked);
        for (i, (x, y)) in blocked.iter().zip(&naive).enumerate() {
            prop_assert!(
                (x - y).abs() < 1e-3 + 1e-4 * y.abs(),
                "matmul {m}x{k}x{n} elem {i}: blocked {x} vs naive {y}"
            );
        }
    }

    /// KERNEL PARITY — the transposed-operand matmuls (backward-pass
    /// kernels) match naive-matmul-with-explicit-transpose.
    #[test]
    fn transposed_matmul_kernels_match_reference(
        m in 1usize..20,
        k in 1usize..40,
        n in 1usize..20,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // NT: a[m,k] @ b[n,k]ᵀ.
        let a = Tensor::randn(vec![m, k], 1.0, &mut rng);
        let b = Tensor::randn(vec![n, k], 1.0, &mut rng);
        let bt = b.transpose();
        let mut want = vec![0.0f32; m * n];
        matmul_naive_into(a.data(), bt.data(), m, k, n, &mut want);
        let mut got = vec![0.0f32; m * n];
        matmul_nt_into(a.data(), b.data(), m, k, n, &mut got);
        for (x, y) in got.iter().zip(&want) {
            prop_assert!((x - y).abs() < 1e-3 + 1e-4 * y.abs(), "nt: {x} vs {y}");
        }
        // TN: a[k,m]ᵀ @ b[k,n].
        let a2 = Tensor::randn(vec![k, m], 1.0, &mut rng);
        let b2 = Tensor::randn(vec![k, n], 1.0, &mut rng);
        let a2t = a2.transpose();
        let mut want = vec![0.0f32; m * n];
        matmul_naive_into(a2t.data(), b2.data(), m, k, n, &mut want);
        let mut got = vec![0.0f32; m * n];
        matmul_tn_into(a2.data(), b2.data(), k, m, n, &mut got);
        for (x, y) in got.iter().zip(&want) {
            prop_assert!((x - y).abs() < 1e-3 + 1e-4 * y.abs(), "tn: {x} vs {y}");
        }
    }

    /// KERNEL PARITY — the fused conv1d+bias+activation matches the naive
    /// reference conv followed by a separate bias/activation sweep, for
    /// both paddings, random kernel widths (including wider-than-window)
    /// and every activation.
    #[test]
    fn fused_conv1d_matches_naive_reference(
        t_len in 1usize..20,
        c_in in 1usize..5,
        c_out in 1usize..5,
        kw in 1usize..7,
        act_idx in 0usize..4,
        with_bias in 0usize..2,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let act = activation_from_index(act_idx);
        let x = Tensor::randn(vec![t_len, c_in], 1.0, &mut rng);
        let w = Tensor::randn(vec![kw, c_in, c_out], 0.5, &mut rng);
        let b = Tensor::randn(vec![c_out], 0.5, &mut rng);
        let bias = (with_bias == 1).then_some(&b);
        for pad in [PadMode::Same, PadMode::Causal] {
            let want = conv1d(&x, &w, bias, pad).map(|v| act.apply(v));
            let mut got = vec![0.0f32; t_len * c_out];
            conv1d_fused_into(
                x.data(), w.data(), bias.map(|t| t.data()),
                t_len, c_in, c_out, kw, pad, act, &mut got,
            );
            for (i, (g, e)) in got.iter().zip(want.data()).enumerate() {
                prop_assert!(
                    (g - e).abs() < 1e-3 + 1e-4 * e.abs(),
                    "conv {pad:?} {act:?} elem {i}: fused {g} vs naive {e}"
                );
            }
        }
    }

    /// KERNEL PARITY — fused attention scores equal the unfused
    /// transpose → naive matmul → scale → mask pipeline.
    #[test]
    fn fused_attention_scores_match_reference(
        t_q in 1usize..12,
        t_k in 1usize..12,
        c in 1usize..16,
        masked in 0usize..2,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = Tensor::randn(vec![t_q, c], 1.0, &mut rng);
        let k = Tensor::randn(vec![t_k, c], 1.0, &mut rng);
        let mask = Tensor::randn(vec![t_q, t_k], 2.0, &mut rng);
        let scale = 1.0 / (c as f32).sqrt();
        let kt = k.transpose();
        let mut want = vec![0.0f32; t_q * t_k];
        matmul_naive_into(q.data(), kt.data(), t_q, c, t_k, &mut want);
        let mask_slice = (masked == 1).then_some(mask.data());
        for (i, w) in want.iter_mut().enumerate() {
            *w *= scale;
            if let Some(m) = mask_slice {
                *w += m[i];
            }
        }
        let mut scratch = vec![0.0f32; t_k * c];
        let mut got = vec![0.0f32; t_q * t_k];
        attention_scores_into(
            q.data(), k.data(), t_q, t_k, c, scale, mask_slice, &mut scratch, &mut got,
        );
        for (g, e) in got.iter().zip(&want) {
            prop_assert!((g - e).abs() < 1e-3 + 1e-4 * e.abs(), "scores: {g} vs {e}");
        }
    }

    /// KERNEL PARITY — the batched matmul entry points are **bit-identical**
    /// to per-member blocked matmuls: `matmul_batched_into` (one GEMM over
    /// stacked left operands, shared RHS) and `matmul_strided_into`
    /// (independent operand pairs). Exact equality, not tolerance: batching
    /// must never change the summation order.
    #[test]
    fn batched_matmul_kernels_bit_identical_to_looped(
        bt in 1usize..6,
        m in 1usize..12,
        k in 1usize..40,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = if seed % 3 == 0 { k + MATMUL_BLOCK } else { k };
        let a = Tensor::randn(vec![bt, m, k], 1.0, &mut rng);
        let shared = Tensor::randn(vec![k, n], 1.0, &mut rng);
        let mut batched = vec![0.0f32; bt * m * n];
        matmul_batched_into(a.data(), shared.data(), bt, m, k, n, &mut batched);
        let mut looped = vec![0.0f32; bt * m * n];
        for i in 0..bt {
            matmul_into(
                &a.data()[i * m * k..(i + 1) * m * k],
                shared.data(),
                m, k, n,
                &mut looped[i * m * n..(i + 1) * m * n],
            );
        }
        prop_assert_eq!(&batched, &looped, "matmul_batched diverged at {}x{}x{}x{}", bt, m, k, n);

        let b = Tensor::randn(vec![bt, k, n], 1.0, &mut rng);
        let mut strided = vec![0.0f32; bt * m * n];
        matmul_strided_into(a.data(), b.data(), bt, m, k, n, &mut strided);
        let mut looped = vec![0.0f32; bt * m * n];
        for i in 0..bt {
            matmul_into(
                &a.data()[i * m * k..(i + 1) * m * k],
                &b.data()[i * k * n..(i + 1) * k * n],
                m, k, n,
                &mut looped[i * m * n..(i + 1) * m * n],
            );
        }
        prop_assert_eq!(&strided, &looped, "matmul_strided diverged at {}x{}x{}x{}", bt, m, k, n);
    }

    /// KERNEL PARITY — the fused causal attention-probability kernel is
    /// **bit-identical** to masked scores followed by a full row softmax,
    /// and the triangular matmul is bit-identical to the blocked kernel on
    /// the resulting probabilities.
    #[test]
    fn causal_probs_and_tri_matmul_bit_identical_to_unfused(
        t in 1usize..16,
        c in 1usize..16,
        n in 1usize..10,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = Tensor::randn(vec![t, c], 1.0, &mut rng);
        let k = Tensor::randn(vec![t, c], 1.0, &mut rng);
        let mut mask = vec![0.0f32; t * t];
        for i in 0..t {
            for j in (i + 1)..t {
                mask[i * t + j] = -1e9;
            }
        }
        let scale = 1.0 / (c as f32).sqrt();
        let mut scratch = vec![0.0f32; t * c];
        let mut want = vec![0.0f32; t * t];
        attention_scores_into(q.data(), k.data(), t, t, c, scale, Some(&mask), &mut scratch, &mut want);
        for row in want.chunks_mut(t) {
            softmax_in_place(row);
        }
        let mut got = vec![0.0f32; t * t];
        attention_probs_causal_into(q.data(), k.data(), t, c, scale, &mut scratch, &mut got);
        prop_assert_eq!(&got, &want, "causal probs diverged at t={} c={}", t, c);

        let v = Tensor::randn(vec![t, n], 1.0, &mut rng);
        let mut full = vec![0.0f32; t * n];
        matmul_into(&got, v.data(), t, t, n, &mut full);
        let mut tri = vec![0.0f32; t * n];
        matmul_tri_lower_into(&got, v.data(), t, n, &mut tri);
        prop_assert_eq!(&tri, &full, "tri matmul diverged at t={} n={}", t, n);
    }

    /// KERNEL PARITY — block-boundary tails and degenerate operands: the
    /// blocked matmul matches the naive reference, and the batched/strided
    /// entry points stay **bit-identical** to looped blocked calls, on
    /// 1×k and k×1 operands and shapes straddling [`MATMUL_BLOCK`] on
    /// every axis. Runs on both feature builds (the scalar fallback and
    /// the simd lane path) via the CI matrix.
    #[test]
    fn matmul_parity_tail_and_degenerate_shapes(
        mi in 0usize..6,
        ki in 0usize..8,
        ni in 0usize..6,
        seed in 0u64..1000,
    ) {
        // Deliberate boundary values: 1 (degenerate row/col vectors),
        // MATMUL_BLOCK ± 1 (block tails), 2·MATMUL_BLOCK ± 1.
        let m = [1, 2, 3, 5, MATMUL_BLOCK - 1, MATMUL_BLOCK + 1][mi];
        let k = [1, 2, 3, MATMUL_BLOCK - 1, MATMUL_BLOCK, MATMUL_BLOCK + 1,
                 2 * MATMUL_BLOCK - 1, 2 * MATMUL_BLOCK + 1][ki];
        let n = [1, 2, 5, MATMUL_BLOCK - 1, MATMUL_BLOCK, MATMUL_BLOCK + 1][ni];
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(vec![m, k], 1.0, &mut rng);
        let b = Tensor::randn(vec![k, n], 1.0, &mut rng);
        let mut naive = vec![0.0f32; m * n];
        matmul_naive_into(a.data(), b.data(), m, k, n, &mut naive);
        let mut blocked = vec![0.0f32; m * n];
        matmul_into(a.data(), b.data(), m, k, n, &mut blocked);
        for (i, (x, y)) in blocked.iter().zip(&naive).enumerate() {
            prop_assert!(
                (x - y).abs() < 1e-3 + 1e-4 * y.abs() * (k as f32).sqrt(),
                "matmul {m}x{k}x{n} elem {i}: blocked {x} vs naive {y}"
            );
        }
        // Batched with the same member shape must reproduce the blocked
        // bits exactly, tails included.
        let bt = 2usize;
        let a2 = Tensor::randn(vec![bt, m, k], 1.0, &mut rng);
        let mut batched = vec![0.0f32; bt * m * n];
        matmul_batched_into(a2.data(), b.data(), bt, m, k, n, &mut batched);
        let mut looped = vec![0.0f32; bt * m * n];
        for i in 0..bt {
            matmul_into(
                &a2.data()[i * m * k..(i + 1) * m * k],
                b.data(),
                m, k, n,
                &mut looped[i * m * n..(i + 1) * m * n],
            );
        }
        prop_assert_eq!(&batched, &looped, "batched tail-shape {}x{}x{} diverged", m, k, n);
    }

    /// DEGENERATE-INPUT PARITY — the fused causal-probability kernel must
    /// stay **bit-identical** to the unfused pipeline even when the scores
    /// contain `NaN`/`±inf` mixed with finite values (an exploded model
    /// must degrade identically on both paths, not panic). Poison values
    /// are injected into `q`/`k` at pseudorandom positions; comparison is
    /// on raw bit patterns because `NaN != NaN`.
    #[test]
    fn causal_probs_bit_identical_on_degenerate_inputs(
        t in 1usize..12,
        c in 1usize..8,
        n_poison in 0usize..5,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = Tensor::randn(vec![t, c], 1.0, &mut rng);
        let mut k = Tensor::randn(vec![t, c], 1.0, &mut rng);
        // Inject NaN / +inf / -inf / huge finite values — huge ones land in
        // the "finite but outside the underflow contract" screen branch.
        const POISON: [f32; 4] = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1e30];
        for i in 0..n_poison {
            let h = seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64 * 0x85EB_CA6B);
            let pos = (h as usize) % (t * c);
            let val = POISON[(h >> 32) as usize % POISON.len()];
            if i % 2 == 0 {
                q.data_mut()[pos] = val;
            } else {
                k.data_mut()[pos] = val;
            }
        }
        let mut mask = vec![0.0f32; t * t];
        for i in 0..t {
            for j in (i + 1)..t {
                mask[i * t + j] = -1e9;
            }
        }
        let scale = 1.0 / (c as f32).sqrt();
        let mut scratch = vec![0.0f32; t * c];
        let mut want = vec![0.0f32; t * t];
        attention_scores_into(q.data(), k.data(), t, t, c, scale, Some(&mask), &mut scratch, &mut want);
        for row in want.chunks_mut(t) {
            softmax_in_place(row);
        }
        let mut got = vec![0.0f32; t * t];
        attention_probs_causal_into(q.data(), k.data(), t, c, scale, &mut scratch, &mut got);
        let got_bits: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
        let want_bits: Vec<u32> = want.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(&got_bits, &want_bits,
            "degenerate causal probs diverged at t={} c={} poison={}", t, c, n_poison);
    }

    /// Matmul distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn matmul_distributive(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(vec![m, k], 1.0, &mut rng);
        let b = Tensor::randn(vec![m, k], 1.0, &mut rng);
        let c = Tensor::randn(vec![k, n], 1.0, &mut rng);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Autodiff linearity: grad of sum(a*x) w.r.t. x is a.
    #[test]
    fn autodiff_linear_grad(n in 1usize..8, alpha in -3.0f32..3.0, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(vec![n], 1.0, &mut rng);
        let mut g = Graph::new();
        let xv = g.bind_param(0, x);
        let s = g.scale(xv, alpha);
        let loss = g.sum_all(s);
        g.backward(loss);
        let grad = g.grad(xv).unwrap();
        for &gv in grad.data() {
            prop_assert!((gv - alpha).abs() < 1e-5);
        }
    }

    /// Ego subgraphs: the centre is local 0 at hop 0, hops are within
    /// bounds, adjacency is internally consistent and fanout-bounded growth
    /// holds.
    #[test]
    fn ego_subgraph_invariants(
        n in 2usize..40,
        edge_seeds in prop::collection::vec((0usize..40, 0usize..40), 0..80),
        center in 0usize..40,
        hops in 1usize..3,
        fanout in 1usize..5,
        seed in 0u64..1000,
    ) {
        let edges: Vec<Edge> = edge_seeds
            .iter()
            .map(|&(a, b)| Edge { src: (a % n) as u32, dst: (b % n) as u32, ty: EdgeType::SameOwner })
            .collect();
        let graph = EsellerGraph::from_edges(n, &edges);
        let center = center % n;
        let mut rng = StdRng::seed_from_u64(seed);
        let ego = extract_ego(&graph, center, &EgoConfig { hops, fanout }, &mut rng);
        prop_assert_eq!(ego.center() as usize, center);
        prop_assert_eq!(ego.hops[0], 0);
        for (i, &h) in ego.hops.iter().enumerate() {
            prop_assert!((h as usize) <= hops, "node {i} at hop {h}");
        }
        // Local adjacency symmetric and in-range.
        for (u, nbs) in ego.adj.iter().enumerate() {
            for nb in nbs {
                prop_assert!((nb.local as usize) < ego.len());
                prop_assert!(ego.adj[nb.local as usize].iter().any(|r| r.local as usize == u));
            }
        }
        // No duplicate nodes.
        let mut sorted = ego.nodes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), ego.nodes.len());
    }

    /// auto_arima never panics and always emits finite forecasts, whatever
    /// the series (including constants and short series).
    #[test]
    fn arima_total_on_arbitrary_series(series in prop::collection::vec(-100.0f64..100.0, 0..40)) {
        let model = auto_arima(&series, 2, 2, 1);
        let f = model.forecast(3);
        prop_assert_eq!(f.len(), 3);
        prop_assert!(f.iter().all(|x| x.is_finite()), "{:?}", f);
    }

    /// ACF is bounded in [-1, 1] and acf[0] == 1 for non-degenerate series.
    #[test]
    fn acf_bounds(series in prop::collection::vec(-50.0f64..50.0, 8..60)) {
        let a = acf(&series, 6);
        if a[0] != 0.0 {
            prop_assert!((a[0] - 1.0).abs() < 1e-9);
            for &v in &a {
                prop_assert!(v.abs() <= 1.0 + 1e-6, "acf out of range: {v}");
            }
        }
    }
}

// Batch-parity properties build a full world + model per case, so they run
// with a smaller case budget than the cheap numeric properties above
// (PROPTEST_CASES still scales them in CI).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// BATCH PARITY — the headline invariant of the batched inference
    /// path: for random worlds, random Gaia depths/fanouts and every batch
    /// size 1..=16, `predict_batch_with` is **element-wise identical**
    /// (exact f32 equality — same kernels, same summation order) to a
    /// `predict_one_with` loop with the same seed. Batch size 1 is
    /// asserted to be the per-request path by construction.
    #[test]
    fn predict_batch_matches_per_request_loop(
        world_seed in 0u64..10_000,
        n_shops in 30usize..70,
        batch in 1usize..=16,
        layers in 1usize..=2,
        hops in 1usize..=2,
        fanout in 1usize..=4,
        pred_seed in 0u64..1_000,
    ) {
        let (world, ds) = generate_dataset(WorldConfig {
            n_shops,
            seed: world_seed,
            ..WorldConfig::tiny()
        });
        let mut cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
        cfg.channels = 8;
        cfg.kernel_groups = 2;
        cfg.layers = layers;
        cfg.ego = EgoConfig { hops, fanout };
        let model = Gaia::new(cfg, world_seed ^ 0x5A5A);
        let centers: Vec<usize> = (0..batch).map(|i| (i * 7 + 3) % ds.n).collect();

        let mut loop_scratch = InferenceScratch::new();
        let expected: Vec<_> = centers
            .iter()
            .map(|&c| predict_one_with(&model, &ds, &world.graph, c, pred_seed, &mut loop_scratch))
            .collect();
        let mut batch_scratch = InferenceScratch::new();
        let got =
            predict_batch_with(&model, &ds, &world.graph, &centers, pred_seed, &mut batch_scratch);
        prop_assert_eq!(got.len(), expected.len());
        for (a, b) in got.iter().zip(&expected) {
            prop_assert_eq!(a.node, b.node);
            prop_assert_eq!(&a.model_space, &b.model_space,
                "batch size {} diverged from the per-request loop", batch);
            prop_assert_eq!(&a.currency, &b.currency);
        }
        // A second pass on the same (now warm) scratch must still agree —
        // cache hits may never change a prediction.
        let again =
            predict_batch_with(&model, &ds, &world.graph, &centers, pred_seed, &mut batch_scratch);
        for (a, b) in again.iter().zip(&expected) {
            prop_assert_eq!(&a.model_space, &b.model_space, "warm-cache batch diverged");
        }
    }

    /// DELTA PARITY WALL — the headline invariant of incremental republish:
    /// for random worlds and a random script of 1..=32 mutation ops
    /// (history rewrites, supply rewires/severs, new shops, industry moves,
    /// explicit no-ops), `publish_delta` from the world's recorded dirty
    /// set serves the same prediction as a full-teardown `publish_full`
    /// for **every** shop, including shops born mid-script. Scalar build:
    /// bit-exact; SIMD build: within 1e-4 relative.
    #[test]
    fn delta_publish_matches_full_rebuild(
        world_seed in 0u64..10_000,
        n_shops in 30usize..70,
        ops in prop::collection::vec((0usize..6, 0u64..1_000_000), 1..33),
    ) {
        let wc = WorldConfig { n_shops, seed: world_seed, ..WorldConfig::tiny() };
        let (mut world_a, ds) = generate_dataset(wc.clone());
        let (mut world_b, _) = generate_dataset(wc);
        let mut cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
        cfg.channels = 8;
        cfg.kernel_groups = 2;
        cfg.layers = 1;
        cfg.ego = EgoConfig { hops: 1, fanout: 3 };
        // Parity is a property of the republish paths, not of training:
        // a deterministically initialised untrained model pins it just as
        // hard and keeps the property affordable per case.
        let model = Gaia::new(cfg.clone(), world_seed ^ 0xD17A);
        let artifact = ModelArtifact {
            version: 1,
            config: cfg,
            checkpoint: model.checkpoint(),
            final_train_loss: 0.0,
        };
        let delta_srv = ModelServer::new(&artifact, world_a.graph.clone(), ds.clone(), 42);
        let full_srv = ModelServer::new(&artifact, world_b.graph.clone(), ds.clone(), 42);

        for &(kind, arg) in &ops {
            apply_churn_op(&mut world_a, ds.horizon, kind, arg);
            apply_churn_op(&mut world_b, ds.horizon, kind, arg);
        }
        let dirty = world_a.take_dirty();
        let dirty_b = world_b.take_dirty();
        prop_assert_eq!(&dirty, &dirty_b, "identical scripts must dirty identical nodes");

        let stats = delta_srv.publish_delta(&world_a, &dirty);
        full_srv.publish_full(&world_b);

        let snap_d = delta_srv.snapshot();
        let snap_f = full_srv.snapshot();
        prop_assert_eq!(snap_d.ds.n, snap_f.ds.n);
        prop_assert_eq!(stats.world_nodes, snap_d.ds.n);
        prop_assert!(stats.recomputed_nodes <= stats.world_nodes);
        prop_assert_eq!(snap_d.world_rev, 1);
        prop_assert_eq!(snap_d.version, 1, "a republish is never a retrain");

        let mut ctx_d = delta_srv.inference_context();
        let mut ctx_f = full_srv.inference_context();
        for shop in 0..snap_d.ds.n {
            let d = ctx_d.predict(shop);
            let f = ctx_f.predict(shop);
            prop_assert_eq!(d.node, f.node);
            if cfg!(feature = "simd") {
                for (h, (a, b)) in d.model_space.iter().zip(&f.model_space).enumerate() {
                    let tol = 1e-4f32 * b.abs().max(1.0);
                    prop_assert!(
                        (a - b).abs() <= tol,
                        "shop {} horizon {}: delta {} vs full {}", shop, h, a, b
                    );
                }
            } else {
                prop_assert_eq!(&d.model_space, &f.model_space,
                    "shop {} diverged bitwise on the scalar build", shop);
            }
        }
    }

    /// PUBLISH PARITY WALL — the batched publish path is a pure
    /// performance rewrite of the per-node reference: for random worlds
    /// (sized to straddle the 64-node cache segment boundary) and random
    /// block sizes (including the degenerate `B = 1` and sizes that leave
    /// a ragged tail, `ds.n % B != 0`), the rank-3 block driver must
    /// reproduce every frozen lane — the embedding plus all five layer-0
    /// projections — for every node. Scalar build: bit-exact; SIMD build:
    /// within 1e-4 relative; `embed-f16`: within 5e-3 relative (one
    /// half-precision round-trip on each side).
    #[test]
    fn batched_publish_matches_per_node(
        world_seed in 0u64..10_000,
        n_shops in 20usize..90,
        block in 1usize..=48,
    ) {
        let wc = WorldConfig { n_shops, seed: world_seed, ..WorldConfig::tiny() };
        let (_world, ds) = generate_dataset(wc);
        let mut cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
        cfg.channels = 8;
        cfg.kernel_groups = 2;
        cfg.layers = 1;
        cfg.ego = EgoConfig { hops: 1, fanout: 3 };
        // Publish parity is a property of the precompute paths, not of
        // training — an untrained deterministic model pins it just as hard.
        let model = Gaia::new(cfg, world_seed ^ 0xB10C);

        let batched = model.precompute_embeddings_batched(&ds, block);
        let reference = model.precompute_embeddings_per_node(&ds).into_shared();

        const SLOTS: [ProjSlot; 5] =
            [ProjSlot::Q, ProjSlot::K, ProjSlot::V, ProjSlot::GateSrc, ProjSlot::GateDst];
        for node in 0..ds.n {
            let mut lanes: Vec<(&str, Vec<f32>, Vec<f32>)> = Vec::with_capacity(6);
            lanes.push((
                "embed",
                batched.embed_vec(node).expect("batched publish must cover every node"),
                reference.embed_vec(node).expect("per-node publish must cover every node"),
            ));
            for slot in SLOTS {
                lanes.push((
                    "proj",
                    batched.proj_vec(node, slot).expect("batched projections missing"),
                    reference.proj_vec(node, slot).expect("per-node projections missing"),
                ));
            }
            for (lane, got, want) in lanes {
                prop_assert_eq!(got.len(), want.len());
                if cfg!(feature = "embed-f16") {
                    for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                        let tol = 5e-3f32 * b.abs().max(1.0);
                        prop_assert!(
                            (a - b).abs() <= tol,
                            "node {} {} [{}] block {}: batched {} vs per-node {}",
                            node, lane, i, block, a, b
                        );
                    }
                } else if cfg!(feature = "simd") {
                    for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                        let tol = 1e-4f32 * b.abs().max(1.0);
                        prop_assert!(
                            (a - b).abs() <= tol,
                            "node {} {} [{}] block {}: batched {} vs per-node {}",
                            node, lane, i, block, a, b
                        );
                    }
                } else {
                    prop_assert_eq!(
                        &got, &want,
                        "node {} {} diverged bitwise on the scalar build (block {})",
                        node, lane, block
                    );
                }
            }
        }
    }

    /// SHARD PARITY WALL — the headline invariant of shard-per-worker
    /// serving: for random worlds, shard counts (1 through more shards
    /// than industries) and micro-batch caps, the sharded fleet — per-shard
    /// queues, pinned workers, work stealing, per-shard snapshot slices —
    /// returns exactly the unsharded per-request path's predictions, in
    /// request order; and after a random churn script plus a sharded delta
    /// republish (which reslices only the affected shards, leaving the
    /// rest on their previous generation) the grown world still agrees
    /// shop for shop. Scalar build: bit-exact; SIMD: 1e-4 relative;
    /// `embed-f16` carries the frozen-cache quantisation budget (5e-3).
    #[test]
    fn sharded_routing_matches_unsharded(
        world_seed in 0u64..10_000,
        n_shops in 30usize..70,
        n_shards in 1usize..=6,
        micro_batch in 1usize..=8,
        ops in prop::collection::vec((0usize..6, 0u64..1_000_000), 0..9),
    ) {
        let wc = WorldConfig { n_shops, seed: world_seed, ..WorldConfig::tiny() };
        let (mut world, ds) = generate_dataset(wc);
        let mut cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
        cfg.channels = 8;
        cfg.kernel_groups = 2;
        cfg.layers = 1;
        cfg.ego = EgoConfig { hops: 1, fanout: 3 };
        let model = Gaia::new(cfg.clone(), world_seed ^ 0x54AD);
        let artifact = ModelArtifact {
            version: 1,
            config: cfg,
            checkpoint: model.checkpoint(),
            final_train_loss: 0.0,
        };
        let server = ShardedModelServer::new(&artifact, &world, ds.clone(), n_shards, 42);
        prop_assert_eq!(server.n_shards(), n_shards.max(1));

        let check_world = |server: &ShardedModelServer, phase: &str| {
            let n = server.master().snapshot().ds.n;
            let shops: Vec<usize> = (0..n).collect();
            let (want, _) = server.master().predict_many(&shops, 1);
            let (got, stats) = server.serve_sharded(&shops, micro_batch);
            if got.len() != want.len() {
                return Err(TestCaseError::fail(format!("{phase}: length mismatch")));
            }
            for (a, b) in got.iter().zip(&want) {
                if a.node != b.node {
                    return Err(TestCaseError::fail(format!(
                        "{phase}: order changed at node {} vs {}", a.node, b.node
                    )));
                }
                let exact = !cfg!(any(feature = "simd", feature = "embed-f16"));
                let rel = if cfg!(feature = "embed-f16") { 5e-3f32 } else { 1e-4 };
                for (h, (x, y)) in a.model_space.iter().zip(&b.model_space).enumerate() {
                    let ok = if exact { x == y } else { (x - y).abs() <= rel * y.abs().max(1.0) };
                    if !ok {
                        return Err(TestCaseError::fail(format!(
                            "{phase}: shop {} horizon {h}: sharded {x} vs unsharded {y}", b.node
                        )));
                    }
                }
            }
            // Telemetry closure: every request lands in exactly one
            // worker row, one home-shard row and one batch-size bucket.
            if stats.per_worker.iter().sum::<usize>() != n
                || stats.per_shard.iter().sum::<usize>() != n
            {
                return Err(TestCaseError::fail(format!("{phase}: attribution does not sum")));
            }
            let weighted: usize =
                stats.per_batch_size.iter().enumerate().map(|(i, c)| (i + 1) * c).sum();
            if weighted != n {
                return Err(TestCaseError::fail(format!("{phase}: batch histogram does not sum")));
            }
            Ok(())
        };
        check_world(&server, "boot")?;

        // Random churn, republished through the sharded delta path: only
        // affected shards reslice; the rest serve their previous
        // generation, which this check proves indistinguishable.
        for &(kind, arg) in &ops {
            apply_churn_op(&mut world, ds.horizon, kind, arg);
        }
        let dirty = world.take_dirty();
        server.publish_delta(&world, &dirty);
        prop_assert_eq!(server.shard_map().len(), world.shops.len());
        check_world(&server, "post-churn")?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// LAYOUT PARITY — the flat-arena `Dataset` must be an invisible
    /// storage change: for random worlds, every row read through the
    /// accessors is **bit-identical** to a nested per-shop reference
    /// computed here value-by-value from the world (per-shop `Vec`s, the
    /// public `Scaler` API, the pre-refactor formulas). This pins the
    /// arena strides, the fused scaler fit, the shared trig table and the
    /// synthesized observed flag all at once — any drift in how the flat
    /// layout stores or reconstructs a value fails a `to_bits` compare.
    #[test]
    fn flat_layout_matches_nested_reference(
        world_seed in 0u64..10_000,
        n_shops in 30usize..90,
    ) {
        let world =
            World::generate(WorldConfig { n_shops, seed: world_seed, ..WorldConfig::tiny() });
        let ds = build_dataset(&world);
        let cfg = &world.config;
        let (in_start, fut_start) = (cfg.input_start(), cfg.horizon_start());
        let t = cfg.input_window;
        let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();

        // The nested layout fitted scalers by gathering observed training
        // cells into per-column Vecs and running the public iterator fit.
        // The flat build accumulates the same moments straight off its log
        // arena — the fitted parameters must not move by a single bit.
        let mut gmv_cells = Vec::new();
        let mut ord_cells = Vec::new();
        let mut cus_cells = Vec::new();
        for &v in &ds.splits.train {
            let shop = &world.shops[v];
            for m in in_start..fut_start {
                if m >= shop.opened {
                    gmv_cells.push(shop.gmv[m]);
                    ord_cells.push(shop.orders[m]);
                    cus_cells.push(shop.customers[m]);
                }
            }
        }
        for (fitted, stored) in [
            (Scaler::fit(gmv_cells.into_iter()), ds.scaler),
            (Scaler::fit(ord_cells.into_iter()), ds.orders_scaler),
            (Scaler::fit(cus_cells.into_iter()), ds.customers_scaler),
        ] {
            prop_assert_eq!(fitted.mean.to_bits(), stored.mean.to_bits());
            prop_assert_eq!(fitted.std.to_bits(), stored.std.to_bits());
        }

        for v in 0..ds.n {
            let shop = &world.shops[v];
            let series: Vec<f32> = (in_start..fut_start)
                .map(|m| if m >= shop.opened { ds.scaler.normalize(shop.gmv[m]) } else { 0.0 })
                .collect();
            prop_assert_eq!(bits(ds.gmv_row(v)), bits(&series), "gmv row {} drifted", v);

            let mut temporal = vec![0.0f32; t * D_TEMPORAL];
            for (row, m) in (in_start..fut_start).enumerate() {
                let observed = m >= shop.opened;
                let angle = std::f32::consts::TAU * month_of_year(m) as f32 / 12.0;
                let cell = &mut temporal[row * D_TEMPORAL..(row + 1) * D_TEMPORAL];
                cell[0] = angle.sin();
                cell[1] = angle.cos();
                cell[2] =
                    if observed { ds.orders_scaler.normalize(shop.orders[m]) } else { 0.0 };
                cell[3] =
                    if observed { ds.customers_scaler.normalize(shop.customers[m]) } else { 0.0 };
                cell[4] = if observed { 1.0 } else { 0.0 };
            }
            let mut flat = vec![0.0f32; t * D_TEMPORAL];
            ds.write_temporal_row(v, &mut flat);
            prop_assert_eq!(bits(&flat), bits(&temporal), "temporal row {} drifted", v);
            for row in 0..t {
                for k in 0..D_TEMPORAL {
                    prop_assert_eq!(
                        ds.temporal_at(v, row, k).to_bits(),
                        temporal[row * D_TEMPORAL + k].to_bits(),
                        "temporal_at({}, {}, {}) disagrees with the row view", v, row, k
                    );
                }
            }

            let mut stat = vec![0.0f32; ds.d_s];
            stat[shop.industry as usize] = 1.0;
            stat[cfg.n_industries + shop.region as usize] = 1.0;
            stat[cfg.n_industries + cfg.n_regions] =
                if shop.role == Role::Supplier { 1.0 } else { 0.0 };
            let obs = (in_start..fut_start).filter(|&m| m >= shop.opened).count();
            stat[cfg.n_industries + cfg.n_regions + 1] = obs.min(t) as f32 / t as f32;
            prop_assert_eq!(bits(ds.statics_row(v)), bits(&stat), "static row {} drifted", v);
            prop_assert_eq!(ds.observed_len[v], obs);

            for (h, m) in (fut_start..fut_start + cfg.horizon).enumerate() {
                prop_assert_eq!(ds.targets_raw_row(v)[h].to_bits(), shop.gmv[m].to_bits());
                prop_assert_eq!(
                    ds.targets_norm_row(v)[h].to_bits(),
                    ds.scaler.normalize_pos(shop.gmv[m]).to_bits()
                );
            }
        }
    }

    /// HALF ROUND-TRIP — the `embed-f16` cache tier's error budget, pinned
    /// on random magnitudes spanning subnormals to near the binary16 max:
    /// encode→decode stays within half a ulp (`2^-11` relative for normal
    /// values, `2^-25` absolute once the value falls into the subnormal
    /// range), and re-encoding the decoded value is exact (decoded halves
    /// are fixed points of the conversion).
    #[test]
    fn f16_round_trip_within_half_ulp(
        values in prop::collection::vec((-1.0f32..1.0, -30i32..16), 1..64),
    ) {
        for &(m, e) in &values {
            let x = m * 2.0f32.powi(e); // |x| < 2^15 — no binary16 overflow
            let h = f32_to_f16(x);
            let rt = f16_to_f32(h);
            let bound = x.abs() / 2048.0 + 2.0f32.powi(-25);
            prop_assert!(
                (rt - x).abs() <= bound,
                "round-trip of {x} gave {rt} (err {} > bound {bound})", (rt - x).abs()
            );
            prop_assert_eq!(f32_to_f16(rt), h, "decoded half {rt} is not a fixed point");
        }
    }
}
