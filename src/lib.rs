//! # gaia-suite
//!
//! Umbrella crate of the Gaia reproduction (ICDE 2022,
//! arXiv:2207.13329): re-exports every sub-crate and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! Start from [`gaia_core::Gaia`] and [`gaia_synth::generate_dataset`], or
//! run `cargo run --release --example quickstart`.

pub use gaia_baselines as baselines;
pub use gaia_core as core;
pub use gaia_eval as eval;
pub use gaia_graph as graph;
pub use gaia_nn as nn;
pub use gaia_serving as serving;
pub use gaia_synth as synth;
pub use gaia_tensor as tensor;
pub use gaia_timeseries as timeseries;
